//! Mid-query failover recovery (PR 10's tentpole): one wide-scan query on
//! a replicated fleet whose source crashes mid-stream, measured three
//! ways on the same virtual timeline:
//!
//! * **fault-free** — the streamed execution with no fault, the latency
//!   floor;
//! * **adaptive** — the crash interrupts the stream, the coordinator
//!   cancels and re-dispatches the *remainder* (cursor position) to a
//!   within-band replica, and the query completes;
//! * **no-adaptivity baseline** — same crash with remainder re-dispatch
//!   disabled (`reroute_limit = 0`) and no whole-query retries: the
//!   interrupt surfaces as a query failure.
//!
//! The machine-checkable verdict (`reroute recovery: OK|VIOLATED`)
//! asserts the adaptive run really rerouted, completed within 2x the
//! fault-free latency, returned the exact fault-free row count, and that
//! the baseline failed — recovery is attributable to the reroute path,
//! not to masking. `ci.sh` greps the verdict.

use qcc_common::{FieldValue, SimTime};
use qcc_core::QccConfig;
use qcc_workload::scenario::{scale_server_specs, Scenario, ScenarioConfig};

const FLEET: usize = 12;
const SEED: u64 = 77;

/// Wide scan: a multi-chunk fragment stream, so the crash can leave a
/// partially-delivered prefix worth resuming.
const SQL: &str = "SELECT a.id, a.grp FROM big_a a WHERE a.sel > 2000";

fn scenario() -> Scenario {
    Scenario::build_with_qcc(
        QccConfig::default(),
        ScenarioConfig {
            large_rows: 3000,
            small_rows: 60,
            seed: SEED,
            threads: 1,
            obs_enabled: true,
            retry_limit: 2,
            server_specs: scale_server_specs(FLEET, SEED),
            replication_factor: 3,
            stall_factor: 4.0,
            ..ScenarioConfig::default()
        },
    )
}

fn main() {
    // Fault-free floor, plus the victim fragment's timeline (the runs are
    // deterministic, so the faulted runs share it up to the crash).
    let clean = scenario();
    let clean_out = clean.federation.submit(SQL).expect("fault-free run");
    let frags = clean.obs.events_of("fragment");
    let victim_frag = frags
        .iter()
        .max_by(|a, b| {
            let ms = |e: &&qcc_common::Event| match e.field("ms") {
                Some(FieldValue::F64(v)) => *v,
                _ => 0.0,
            };
            ms(a).total_cmp(&ms(b))
        })
        .expect("fragment journalled");
    let victim = victim_frag
        .str_field("server")
        .expect("server field")
        .to_string();
    let frag_start = victim_frag.at.as_millis();
    let frag_ms = match victim_frag.field("ms") {
        Some(FieldValue::F64(v)) => *v,
        _ => 0.0,
    };
    println!(
        "fault-free: {:.3} ms ({} rows, victim fragment {victim} {:.3} ms)",
        clean_out.response_ms,
        clean_out.rows.len(),
        frag_ms
    );

    // Adaptive run: sweep the crash instant across the fragment until the
    // interrupt actually costs delivered chunks (a mid-stream cut), then
    // measure the rerouted completion.
    let mut adaptive: Option<(f64, usize, u64, f64)> = None;
    for frac in [0.55, 0.65, 0.75, 0.85, 0.45, 0.35, 0.25] {
        let cut = frag_start + frac * frag_ms;
        let s = scenario();
        s.server(&victim)
            .availability()
            .add_outage(SimTime::from_millis(cut), SimTime::from_millis(1e12));
        let Ok(out) = s.federation.submit(SQL) else {
            continue;
        };
        let reroutes = s.obs.events_of("reroute_dispatch").len();
        if reroutes >= 1 {
            adaptive = Some((cut, out.rows.len(), reroutes as u64, out.response_ms));
            break;
        }
    }
    let Some((cut, adaptive_rows, reroutes, adaptive_ms)) = adaptive else {
        println!("reroute recovery: VIOLATED (no crash placement produced a reroute)");
        std::process::exit(1);
    };
    println!("adaptive: {adaptive_ms:.3} ms ({adaptive_rows} rows, {reroutes} reroute(s))");

    // No-adaptivity baseline: the same crash with remainder re-dispatch
    // and whole-query retries disabled — the mid-stream loss is fatal.
    let mut base = scenario();
    base.federation.config_mut().reroute_limit = 0;
    base.federation.config_mut().retry_limit = 0;
    base.server(&victim)
        .availability()
        .add_outage(SimTime::from_millis(cut), SimTime::from_millis(1e12));
    let baseline = base.federation.submit(SQL);
    match &baseline {
        Ok(out) => println!(
            "no-adaptivity baseline: completed {:.3} ms ({} rows) — crash was not in the stream",
            out.response_ms,
            out.rows.len()
        ),
        Err(e) => println!("no-adaptivity baseline: failed ({e})"),
    }

    let exact = adaptive_rows == clean_out.rows.len();
    let bounded = adaptive_ms <= 2.0 * clean_out.response_ms;
    let baseline_fails = baseline.is_err();
    if exact && bounded && baseline_fails {
        println!(
            "reroute recovery: OK (adaptive {adaptive_ms:.3} ms <= 2x fault-free {:.3} ms, \
             exact rows, baseline fails without reroute)",
            clean_out.response_ms
        );
    } else {
        println!(
            "reroute recovery: VIOLATED (exact_rows={exact} bounded={bounded} \
             baseline_fails={baseline_fails})"
        );
        std::process::exit(1);
    }
}
