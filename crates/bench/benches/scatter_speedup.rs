//! Wall-clock speedup of the scatter-gather layer (PR 2's tentpole).
//!
//! Virtual time is untouched by the worker-pool width — the golden
//! equivalence suite (`tests/parallel_determinism.rs`) proves results are
//! byte-identical for any thread count. What parallelism buys is *host*
//! wall-clock time: per-fragment EXPLAIN fan-out, parallel fragment
//! execution, and batched query submission all scatter real CPU work
//! (parse, plan, scan, join, merge) across workers.
//!
//! Three workloads, each at 1/2/4/8 worker threads:
//!
//! * `qt1 batches` — rounds of batched QT1 submissions (2-fragment join:
//!   scatter width 2 per query, plus batch-level parallelism).
//! * `qt4 batches` — rounds of batched QT4 submissions (3-table join:
//!   the widest per-query fan-out in the workload).
//! * `phase run`   — a full two-phase calibrated experiment, warmup and
//!   measurement included.
//!
//! Speedup is bounded above by the host's physical parallelism: on an
//! N-core machine the curve flattens at ~N×, and on a single-core host
//! every row measures ~1.0× — the numbers report what the *host* can
//! exploit, not what the layer offers.

use qcc_bench::BenchScale;
use qcc_common::WallStopwatch;
use qcc_workload::experiment::run_phases_on;
use qcc_workload::{PhaseSchedule, QueryType, Routing, Scenario, ScenarioConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config_with_threads(base: &ScenarioConfig, threads: usize) -> ScenarioConfig {
    ScenarioConfig {
        threads,
        ..base.clone()
    }
}

/// Time `rounds` batched submissions of `qt` on a fresh scenario and
/// return (wall ms, virtual avg ms) — the virtual number must not move
/// with the thread count.
fn time_batches(base: &ScenarioConfig, threads: usize, qt: QueryType, rounds: u32) -> (f64, f64) {
    let scenario = Scenario::build_with(Routing::Qcc, config_with_threads(base, threads));
    let mut virtual_ms = 0.0;
    let mut n = 0u32;
    let sw = WallStopwatch::start();
    for round in 0..rounds {
        let sqls: Vec<String> = (0..4).map(|k| qt.sql(round * 4 + k)).collect();
        for outcome in scenario.federation.submit_batch(&sqls) {
            let out = outcome.expect("bench queries succeed");
            virtual_ms += out.response_ms;
            n += 1;
        }
    }
    let wall_ms = sw.elapsed_nanos() as f64 / 1e6;
    (wall_ms, virtual_ms / n as f64)
}

/// Time a full two-phase calibrated run; returns (wall ms, virtual avg ms
/// of the final phase).
fn time_phase_run(scale: &BenchScale, threads: usize) -> (f64, f64) {
    let scenario = Scenario::build_with(Routing::Qcc, config_with_threads(&scale.config, threads));
    let schedule = PhaseSchedule {
        phases: PhaseSchedule::paper_table1().phases[..2].to_vec(),
    };
    let sw = WallStopwatch::start();
    let result = run_phases_on(
        &scenario,
        Routing::Qcc,
        &schedule,
        scale.instances,
        scale.warmup,
    );
    let wall_ms = sw.elapsed_nanos() as f64 / 1e6;
    (
        wall_ms,
        result.phases.last().map(|p| p.avg_ms).unwrap_or(0.0),
    )
}

fn main() {
    let scale = BenchScale::from_env();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "scatter-gather wall-clock speedup (host parallelism: {host_cores} core{})",
        if host_cores == 1 { "" } else { "s" }
    );
    if host_cores == 1 {
        println!(
            "note: single-core host — worker pools cannot overlap, so every\n\
             measured speedup is ~1.0x; the determinism columns are the\n\
             meaningful signal here (virtual ms must not move with threads)."
        );
    }
    let rounds = (scale.instances / 2).max(2);

    for (name, run) in [
        (
            "qt1 batches",
            Box::new(|t: usize| time_batches(&scale.config, t, QueryType::QT1, rounds))
                as Box<dyn Fn(usize) -> (f64, f64)>,
        ),
        (
            "qt4 batches",
            Box::new(|t: usize| time_batches(&scale.config, t, QueryType::QT4, rounds)),
        ),
        ("phase run", Box::new(|t: usize| time_phase_run(&scale, t))),
    ] {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut base_wall = 0.0;
        let mut base_virtual_bits = 0u64;
        for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
            let (wall_ms, virtual_ms) = run(threads);
            if i == 0 {
                base_wall = wall_ms;
                base_virtual_bits = virtual_ms.to_bits();
            }
            rows.push(vec![
                threads.to_string(),
                format!("{wall_ms:.1}"),
                format!("{:.2}x", base_wall / wall_ms),
                format!("{virtual_ms:.2}"),
                if virtual_ms.to_bits() == base_virtual_bits {
                    "identical".to_string()
                } else {
                    "DIVERGED".to_string()
                },
            ]);
        }
        qcc_bench::print_table(
            &format!("{name} at 1/2/4/8 threads"),
            &[
                "threads".to_string(),
                "wall ms".to_string(),
                "speedup".to_string(),
                "virtual ms".to_string(),
                "determinism".to_string(),
            ],
            &rows,
        );
    }
}
