//! Supplementary harness: the "network aware" half of the paper's title.
//!
//! The paper folds network latency into the same calibration factor as
//! server load (§3.1) and gives it no dedicated figure; this harness
//! produces one. Two identical replicas — one near (2 ms RTT), one far
//! (12 ms RTT) — serve a steady query stream while congestion on the near
//! link steps up and back down. The series shows the response time the
//! client sees and which replica served each window, under the baseline
//! (no QCC) and under QCC routing.

use qcc_bench::print_table;
use qcc_common::{Column, DataType, Row, Schema, ServerId, SimDuration, SimTime, Value};
use qcc_core::{Qcc, QccConfig};
use qcc_federation::{
    Federation, FederationConfig, Middleware, NicknameCatalog, PassthroughMiddleware,
};
use qcc_netsim::{Link, LoadProfile, Network, SimClock};
use qcc_remote::{RemoteServer, ServerProfile};
use qcc_storage::{Catalog, Table};
use qcc_wrapper::RelationalWrapper;
use std::sync::Arc;

const SQL: &str = "SELECT grp, COUNT(*) AS n FROM readings GROUP BY grp";

fn build(with_qcc: bool) -> (Federation, Link, SimClock) {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("grp", DataType::Int),
    ]);
    let mut readings = Table::new("readings", schema.clone());
    for i in 0..8_000i64 {
        readings
            .insert(Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .unwrap();
    }
    let mk = |name: &str| {
        let mut c = Catalog::new();
        c.register(readings.clone());
        RemoteServer::new(ServerProfile::new(ServerId::new(name)), c)
    };
    let near = mk("near");
    let far = mk("far");

    // Congestion steps: calm until 1 s, congested 1–3 s, calm again.
    let near_link = Link::new(
        2.0,
        20_000.0,
        LoadProfile::Steps(vec![
            (SimTime::from_millis(1_000.0), 0.92),
            (SimTime::from_millis(3_000.0), 0.0),
        ]),
    );
    let far_link = Link::new(12.0, 20_000.0, LoadProfile::Constant(0.0));
    let mut network = Network::new();
    network.add_link(ServerId::new("near"), near_link.clone());
    network.add_link(ServerId::new("far"), far_link);
    let network = Arc::new(network);

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("readings", schema);
    nicknames
        .add_source("readings", ServerId::new("near"), "readings")
        .unwrap();
    nicknames
        .add_source("readings", ServerId::new("far"), "readings")
        .unwrap();

    let middleware: Arc<dyn Middleware> = if with_qcc {
        Qcc::new(QccConfig::default()).middleware()
    } else {
        Arc::new(PassthroughMiddleware::default())
    };
    let clock = SimClock::new();
    let mut fed = Federation::new(
        nicknames,
        clock.clone(),
        middleware,
        FederationConfig::default(),
    );
    fed.add_wrapper(Arc::new(RelationalWrapper::new(near, Arc::clone(&network))));
    fed.add_wrapper(Arc::new(RelationalWrapper::new(far, network)));
    (fed, near_link, clock)
}

fn run(with_qcc: bool) -> Vec<(f64, String, f64)> {
    let (fed, _link, clock) = build(with_qcc);
    let mut series = Vec::new();
    for _ in 0..40 {
        let t = clock.now().as_millis();
        let out = fed.submit(SQL).expect("healthy servers");
        let server = out
            .servers
            .iter()
            .next()
            .map(ServerId::to_string)
            .unwrap_or_default();
        series.push((t, server, out.response_ms));
        clock.advance(SimDuration::from_millis(100.0));
    }
    series
}

fn main() {
    let baseline = run(false);
    let qcc = run(true);

    let header = vec![
        "t (ms)".to_string(),
        "phase".to_string(),
        "baseline server".to_string(),
        "baseline ms".to_string(),
        "qcc server".to_string(),
        "qcc ms".to_string(),
    ];
    let rows: Vec<Vec<String>> = baseline
        .iter()
        .zip(&qcc)
        .map(|((t, bs, bms), (_, qs, qms))| {
            let phase = if *t < 1_000.0 {
                "calm"
            } else if *t < 3_000.0 {
                "CONGESTED"
            } else {
                "calm again"
            };
            vec![
                format!("{t:.0}"),
                phase.to_string(),
                bs.clone(),
                format!("{bms:.1}"),
                qs.clone(),
                format!("{qms:.1}"),
            ]
        })
        .collect();
    print_table(
        "Supplementary — congestion step on the near link (baseline vs QCC routing)",
        &header,
        &rows,
    );

    let avg = |series: &[(f64, String, f64)], from: f64, to: f64| {
        let xs: Vec<f64> = series
            .iter()
            .filter(|(t, _, _)| *t >= from && *t < to)
            .map(|(_, _, ms)| *ms)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    print_table(
        "Congested-window averages",
        &["routing".into(), "calm ms".into(), "congested ms".into()],
        &[
            vec![
                "baseline".into(),
                format!("{:.1}", avg(&baseline, 0.0, 1_000.0)),
                format!("{:.1}", avg(&baseline, 1_200.0, 3_000.0)),
            ],
            vec![
                "qcc".into(),
                format!("{:.1}", avg(&qcc, 0.0, 1_000.0)),
                format!("{:.1}", avg(&qcc, 1_200.0, 3_000.0)),
            ],
        ],
    );
}
