//! Admission control under overload (PR 4's tentpole): the same 2x-
//! saturation Poisson arrival sequence served with admission control on
//! (WFQ queue + tokens + deadlines + shedding) and off (a fixed-width
//! worker pool dispatching FIFO, no policy).
//!
//! The table reports, per mode: completions, sheds, p50/p99 response
//! measured from *arrival* (so queueing time counts), goodput (answers
//! within the deadline budget), and host wall time. The shape to look
//! for: the unprotected pool completes everything but its tail is
//! unbounded — the last arrivals wait behind the whole backlog — while
//! admission holds p99 under the deadline budget and sheds the excess.
//! A machine-checkable verdict line (`goodput dominance: OK|VIOLATED`)
//! asserts admission-on wins on *both* axes: goodput at least the
//! unprotected pool's, p99 no worse than the deadline budget. `ci.sh`
//! greps it.
//!
//! Arrival count scales with `QCC_INSTANCES` (default 5 instances ->
//! 1200 arrivals, enough for the unprotected tail to blow through the
//! deadline budget); the arrival rate is fixed at ~2x the tiny
//! scenario's drain rate. Virtual-time numbers are byte-identical for
//! any `QCC_THREADS` (`tests/admission_determinism.rs`).

use qcc_admission::{AdmissionConfig, AdmissionController};
use qcc_bench::BenchScale;
use qcc_common::WallStopwatch;
use qcc_core::QccConfig;
use qcc_workload::{
    poisson_arrivals, run_open_loop, AdmissionMode, ArrivalEvent, OpenLoopReport, Scenario,
    ScenarioConfig,
};
use std::sync::Arc;

const RATE_PER_MS: f64 = 6.0;
const SEED: u64 = 0xfeed;
const QUEUE_DEADLINE_MS: f64 = 40.0;
const EXEC_DEADLINE_MS: f64 = 120.0;
/// 3 servers x 4 base tokens: the unprotected pool gets the same
/// concurrency budget the admitted run derives from its tokens.
const UNPROTECTED_WIDTH: usize = 12;

fn admission_config() -> AdmissionConfig {
    AdmissionConfig {
        queue_deadline_ms: QUEUE_DEADLINE_MS,
        exec_deadline_ms: EXEC_DEADLINE_MS,
        base_tokens: 4,
        // Deep queue: shed-on-dispatch (EDF + per-template estimates)
        // decides what drops, not a shallow depth bound dropping viable
        // bursts at the door.
        max_queue_depth: 1024,
        ..AdmissionConfig::default()
    }
}

fn run_admitted(arrivals: &[ArrivalEvent]) -> (OpenLoopReport, f64) {
    let mut scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let admission = Arc::new(AdmissionController::with_obs(
        admission_config(),
        scenario.obs.clone(),
    ));
    scenario.federation.set_admission(Arc::clone(&admission));
    let sw = WallStopwatch::start();
    let report = run_open_loop(&scenario, AdmissionMode::Admitted(&admission), arrivals);
    (report, sw.elapsed_nanos() as f64 / 1e6)
}

fn run_unprotected(arrivals: &[ArrivalEvent]) -> (OpenLoopReport, f64) {
    let scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let sw = WallStopwatch::start();
    let report = run_open_loop(
        &scenario,
        AdmissionMode::Unprotected {
            width: UNPROTECTED_WIDTH,
        },
        arrivals,
    );
    (report, sw.elapsed_nanos() as f64 / 1e6)
}

fn main() {
    let scale = BenchScale::from_env();
    let count = (scale.instances as usize * 240).max(150);
    let arrivals = poisson_arrivals(RATE_PER_MS, count, SEED);
    let budget = QUEUE_DEADLINE_MS + EXEC_DEADLINE_MS;
    println!(
        "admission control at ~2x saturation: {} Poisson arrivals at {RATE_PER_MS}/ms \
         (seed {SEED:#x}), deadline budget {budget} ms",
        arrivals.len()
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let on = run_admitted(&arrivals);
    let off = run_unprotected(&arrivals);
    let verdict = {
        let (on_good, off_good) = (on.0.goodput(budget), off.0.goodput(budget));
        let on_p99 = on.0.response_percentile(99.0);
        if on_good >= off_good && on_p99 <= budget {
            format!("goodput dominance: OK (on {on_good} >= off {off_good}, p99 {on_p99:.2} <= {budget} ms)")
        } else {
            format!(
                "goodput dominance: VIOLATED (on {on_good} vs off {off_good}, p99 {on_p99:.2} vs budget {budget} ms)"
            )
        }
    };
    for (name, (report, wall_ms)) in [("admission on", on), ("admission off", off)] {
        rows.push(vec![
            name.to_string(),
            report.completed.len().to_string(),
            report.shed.to_string(),
            format!("{:.2}", report.response_percentile(50.0)),
            format!("{:.2}", report.response_percentile(99.0)),
            format!(
                "{} ({:.0}%)",
                report.goodput(budget),
                100.0 * report.goodput(budget) as f64 / arrivals.len() as f64
            ),
            format!("{wall_ms:.1}"),
        ]);
    }
    qcc_bench::print_table(
        &format!(
            "admission on vs off ({} arrivals, unprotected pool width {UNPROTECTED_WIDTH})",
            arrivals.len()
        ),
        &[
            "mode".to_string(),
            "completed".to_string(),
            "shed".to_string(),
            "p50 ms".to_string(),
            "p99 ms".to_string(),
            "goodput".to_string(),
            "wall ms".to_string(),
        ],
        &rows,
    );
    println!("{verdict}");
}
