//! Table 1: the eight combinations of server load conditions.

use qcc_bench::print_table;
use qcc_common::ServerId;
use qcc_workload::PhaseSchedule;

fn main() {
    let schedule = PhaseSchedule::paper_table1();
    let header: Vec<String> = std::iter::once("Server".to_string())
        .chain(schedule.phases.iter().map(|p| format!("Phase{}", p.number)))
        .collect();
    let rows: Vec<Vec<String>> = ["S1", "S2", "S3"]
        .iter()
        .map(|s| {
            let id = ServerId::new(s);
            std::iter::once(s.to_string())
                .chain(
                    schedule
                        .phases
                        .iter()
                        .map(|p| if p.is_loaded(&id) { "Load" } else { "Base" }.to_string()),
                )
                .collect()
        })
        .collect();
    print_table(
        "Table 1 — Combinations of Server Load Conditions",
        &header,
        &rows,
    );
}
