//! Federation compile at fleet scale (PR 9's tentpole): EXPLAIN fan-out
//! and compile+route latency at 50/100/250/500 servers with the replica
//! catalog's source selection on (bound 3) and off (every replica asked
//! to EXPLAIN).
//!
//! Source selection runs *before* the EXPLAIN fan-out, so with full
//! replication the pruned compile contacts at most `bound` servers per
//! fragment instead of the whole fleet — and, because the catalog's cost
//! hints rank servers exactly as the calibrated EXPLAIN costs do, the
//! chosen plan must be identical either way. The verdict line
//! (`scale pruning: OK|VIOLATED`) asserts all three properties — pruned
//! fan-out within the replication bound, fan-out reduced at least 5x at
//! every fleet size of 25+ servers, winners byte-identical — and `ci.sh`
//! greps it.
//!
//! `QCC_FLEETS` (comma-separated server counts) overrides the default
//! 50,100,250,500 sweep for smoke runs.

use qcc_common::{FieldValue, WallStopwatch};
use qcc_workload::{Routing, Scenario, ScenarioConfig};

/// The catalog's source-selection bound (`ScenarioConfig::scale`).
const BOUND: usize = 3;

/// A cheap single-table probe and a two-table join. Under full
/// replication both decompose to one co-located fragment whose candidate
/// set is the whole fleet, so each compile's EXPLAIN fan-out is `n`
/// unpruned and at most the catalog bound pruned.
const SQLS: [&str; 2] = [
    "SELECT COUNT(*) FROM small_s",
    "SELECT s.cat, COUNT(*) AS n, AVG(a.val) AS avg_val \
     FROM big_a a JOIN small_s s ON a.grp = s.id \
     WHERE a.sel < 500 GROUP BY s.cat ORDER BY s.cat",
];

fn fleets_from_env() -> Vec<usize> {
    std::env::var("QCC_FLEETS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![50, 100, 250, 500])
}

/// The `explain_tasks` count of the newest compile span.
fn last_fanout(scenario: &Scenario) -> u64 {
    scenario
        .obs
        .events_of("compile")
        .last()
        .and_then(|e| match e.field("explain_tasks") {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

struct Measured {
    /// Total EXPLAIN tasks across the probe SQLs (one compile each).
    fanout: u64,
    /// Summed median compile+route wall ms across the probe SQLs.
    compile_ms: f64,
    /// Winning plan per SQL: (signature, total cost).
    winners: Vec<(String, f64)>,
}

fn measure(n: usize, pruned: bool) -> Measured {
    let mut cfg = ScenarioConfig::scale(n);
    if !pruned {
        cfg.replication_factor = 0;
    }
    let scenario = Scenario::build_with(Routing::Qcc, cfg);
    let mut fanout = 0u64;
    let mut compile_ms = 0.0;
    let mut winners = Vec::new();
    for sql in SQLS {
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let sw = WallStopwatch::start();
                scenario.federation.explain_global(sql).expect("compiles");
                sw.elapsed_nanos() as f64 / 1e6
            })
            .collect();
        times.sort_by(f64::total_cmp);
        compile_ms += times[times.len() / 2];
        fanout += last_fanout(&scenario);
        let (_, candidates) = scenario.federation.explain_global(sql).expect("compiles");
        let best = candidates.first().expect("at least one candidate");
        winners.push((best.signature(), best.total_cost()));
    }
    Measured {
        fanout,
        compile_ms,
        winners,
    }
}

fn main() {
    let fleets = fleets_from_env();
    println!(
        "federation compile at fleet scale: full replication, catalog bound {BOUND}, \
         fleets {fleets:?}, {} probe queries",
        SQLS.len()
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    for &n in &fleets {
        let on = measure(n, true);
        let off = measure(n, false);
        // With full replication the unpruned compile asks every server
        // per fragment, so the total fragment count falls out of it.
        let fragments = ((off.fanout as usize) / n).max(1);
        if on.fanout as usize > BOUND * fragments {
            violations.push(format!(
                "n={n}: pruned fan-out {} exceeds bound {BOUND} x {fragments} fragments",
                on.fanout
            ));
        }
        let ratio = off.fanout as f64 / (on.fanout.max(1)) as f64;
        if n >= 25 && ratio < 5.0 {
            violations.push(format!("n={n}: fan-out reduction {ratio:.1}x < 5x"));
        }
        let winners_match = on.winners.len() == off.winners.len()
            && on
                .winners
                .iter()
                .zip(&off.winners)
                .all(|(a, b)| a.0 == b.0 && (a.1 - b.1).abs() < 1e-9);
        if !winners_match {
            violations.push(format!("n={n}: chosen plan diverged under pruning"));
        }
        for (mode, m) in [("pruned", &on), ("full", &off)] {
            rows.push(vec![
                n.to_string(),
                mode.to_string(),
                m.fanout.to_string(),
                format!("{:.2}", m.compile_ms),
                if mode == "pruned" {
                    format!("{ratio:.1}x")
                } else {
                    "1.0x".to_string()
                },
                if winners_match {
                    "identical".to_string()
                } else {
                    "DIVERGED".to_string()
                },
            ]);
        }
    }
    qcc_bench::print_table(
        "EXPLAIN fan-out and compile+route latency, source selection on vs off",
        &[
            "servers".to_string(),
            "selection".to_string(),
            "explain tasks".to_string(),
            "compile ms".to_string(),
            "reduction".to_string(),
            "winner".to_string(),
        ],
        &rows,
    );
    if violations.is_empty() {
        println!(
            "scale pruning: OK (fan-out within bound {BOUND} per fragment, >=5x reduction, \
             winners identical across {} fleet sizes)",
            fleets.len()
        );
    } else {
        for v in &violations {
            println!("  {v}");
        }
        println!(
            "scale pruning: VIOLATED ({} check(s) failed)",
            violations.len()
        );
    }
}
