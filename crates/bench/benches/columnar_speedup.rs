//! Wall-clock speedup of columnar batch execution (PR 7's tentpole).
//!
//! Virtual time is untouched by the execution model: the batch executor
//! replicates the row executor's `Work` accounting expression for
//! expression (operator-level totals, never per-chunk partials), so the
//! virtual digest column must read `identical` on every row. What the
//! columnar rewrite buys is *host* wall-clock time: zero-copy Arc-shared
//! scans, selection vectors instead of row materialization, a
//! column-compare fast path for simple predicates, and zone-map chunk
//! pruning on clustered columns.
//!
//! Five workloads over the §5 scenario schema at `QCC_LARGE_ROWS` scale,
//! each run through `rowexec::execute_rows` (the row-at-a-time reference)
//! and `execute_batches` (the columnar engine) on the *same* plan:
//!
//! * `scan`          — full-table scan (Arc sharing vs per-row clones).
//! * `filter`        — selective predicate on an unclustered column.
//! * `filter zoned`  — range predicate on the clustered serial key, where
//!   per-chunk min/max summaries let the batch engine skip whole chunks.
//! * `join+agg`      — the paper's QT1 (large ⋈ large, group aggregate).
//! * `agg`           — grouped aggregation over the large table.

use qcc_bench::BenchScale;
use qcc_common::WallStopwatch;
use qcc_engine::{execute_batches, rowexec, Engine};
use qcc_storage::{Catalog, ColumnSpec, TableSpec};

const REPS: usize = 5;

/// The scenario's table shapes (see `qcc-workload`), without indexes so
/// every query has exactly one plan and both executors run it.
fn build_catalog(large: u64, small: u64) -> Catalog {
    let specs = vec![
        TableSpec::new(
            "big_a",
            large,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "grp".into(),
                    lo: 0,
                    hi: small as i64,
                },
                ColumnSpec::FloatUniform {
                    name: "val".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
                ColumnSpec::IntUniform {
                    name: "sel".into(),
                    lo: 0,
                    hi: 10_000,
                },
            ],
        ),
        TableSpec::new(
            "big_b",
            large,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "a_id".into(),
                    lo: 0,
                    hi: large as i64,
                },
                ColumnSpec::IntUniform {
                    name: "qty".into(),
                    lo: 0,
                    hi: 100,
                },
            ],
        ),
    ];
    let mut catalog = Catalog::new();
    for (i, spec) in specs.iter().enumerate() {
        catalog.register(spec.generate(7_001 + i as u64));
    }
    catalog
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct Outcome {
    rows_out: u64,
    row_ms: f64,
    batch_ms: f64,
    digest_ok: bool,
}

/// Run one query through both executors and report medians plus the
/// virtual-time digest comparison.
fn run_query(engine: &Engine, sql: &str) -> Outcome {
    let plans = engine.explain(sql).expect("bench query plans");
    let plan = &plans[0].plan;
    let mut row_times = Vec::with_capacity(REPS);
    let mut batch_times = Vec::with_capacity(REPS);
    let mut rows_out = 0u64;
    let mut digest_ok = true;
    for _ in 0..REPS {
        let sw = WallStopwatch::start();
        let (rrows, rwork) =
            rowexec::execute_rows(plan, engine.catalog(), engine.cost_model()).expect("row engine");
        row_times.push(sw.elapsed_nanos() as f64 / 1e6);

        let sw = WallStopwatch::start();
        let (batches, bwork) =
            execute_batches(plan, engine.catalog(), engine.cost_model()).expect("batch engine");
        batch_times.push(sw.elapsed_nanos() as f64 / 1e6);

        rows_out = bwork.rows_output;
        digest_ok = digest_ok
            && bwork.cpu_units.to_bits() == rwork.cpu_units.to_bits()
            && bwork.rows_output == rrows.len() as u64
            && bwork.result_bytes == rwork.result_bytes
            && batches
                .iter()
                .map(qcc_common::ColumnBatch::n_rows)
                .sum::<usize>()
                == rrows.len();
    }
    Outcome {
        rows_out,
        row_ms: median(row_times),
        batch_ms: median(batch_times),
        digest_ok,
    }
}

fn main() {
    let scale = BenchScale::from_env();
    let large = scale.config.large_rows;
    let small = scale.config.small_rows;
    println!("columnar execution wall-clock speedup (large tables: {large} rows)");
    let catalog = build_catalog(large, small);
    let engine = Engine::new(catalog);

    let zone_hi = (large / 50).max(1);
    let workloads: Vec<(&str, String)> = vec![
        ("scan", "SELECT * FROM big_a".into()),
        (
            "filter",
            "SELECT * FROM big_a WHERE big_a.sel > 9000".into(),
        ),
        (
            "filter zoned",
            format!("SELECT * FROM big_a WHERE big_a.id < {zone_hi}"),
        ),
        (
            "join+agg",
            "SELECT a.grp, COUNT(*) AS n, SUM(b.qty) AS total \
             FROM big_a a JOIN big_b b ON b.a_id = a.id \
             WHERE a.sel > 2000 GROUP BY a.grp"
                .into(),
        ),
        (
            "agg",
            "SELECT a.grp, COUNT(*) AS n, SUM(a.val) AS total FROM big_a a GROUP BY a.grp".into(),
        ),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, sql) in &workloads {
        let o = run_query(&engine, sql);
        rows.push(vec![
            (*name).to_string(),
            o.rows_out.to_string(),
            format!("{:.2}", o.row_ms),
            format!("{:.2}", o.batch_ms),
            format!("{:.2}x", o.row_ms / o.batch_ms),
            if o.digest_ok {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    qcc_bench::print_table(
        "row-at-a-time vs columnar batches (median of 5 runs)",
        &[
            "workload".to_string(),
            "rows out".to_string(),
            "row ms".to_string(),
            "batch ms".to_string(),
            "speedup".to_string(),
            "virtual digest".to_string(),
        ],
        &rows,
    );
}
