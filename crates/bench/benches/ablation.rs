//! Ablations of the QCC's design choices (DESIGN.md §5):
//!
//! 1. **Calibration window size** — measured as *adaptation lag*: how many
//!    queries after a sudden load flip until routing leaves the loaded
//!    server. Small windows react fast; large windows average the new
//!    regime away.
//! 2. **Per-fragment vs per-server-only factors** — §3.1 argues for
//!    fragment-level refinement; per-server-only forces all query types
//!    to share one factor, mis-routing the types whose sensitivity
//!    differs from the average.
//! 3. **Cost band width for load distribution** — §4's 20% band, measured
//!    on equal replicas: a 5% band with small cost jitter rotates less
//!    than the 20% band; the spread across servers is the observable.

use qcc_bench::{print_table, BenchScale};
use qcc_common::{Column, DataType, Row, Schema, ServerId, Value};
use qcc_core::{LoadBalanceMode, Qcc, QccConfig};
use qcc_federation::{Federation, FederationConfig, NicknameCatalog};
use qcc_netsim::{Link, LoadProfile, Network, SimClock};
use qcc_remote::{RemoteServer, ServerProfile};
use qcc_storage::{Catalog, Table};
use qcc_workload::{run_phases_on, PhaseSchedule, QueryType, Routing, Scenario};
use qcc_wrapper::RelationalWrapper;
use std::sync::Arc;

fn main() {
    let scale = BenchScale::from_env();
    ablation_window_size(&scale);
    ablation_fragment_factors(&scale);
    ablation_cost_band();
}

/// 1. Window size vs adaptation lag after an unannounced load flip
///    (no phase-boundary reset — the window must do the forgetting).
fn ablation_window_size(scale: &BenchScale) {
    let mut rows = Vec::new();
    for window in [2usize, 8, 32] {
        let config = QccConfig {
            calibration_window: window,
            ..QccConfig::default()
        };
        let scenario = Scenario::build_with_qcc(config, scale.config.clone());
        // Establish S3 as the learned choice for QT2 while unloaded,
        // with enough history to saturate the largest window under test.
        for i in 0..36 {
            let _ = scenario.federation.submit(&QueryType::QT2.sql(i));
        }
        // A *moderate* load flips on S3 (drastic jumps re-route within a
        // couple of queries regardless of window; the window's inertia
        // shows on gentler shifts).
        scenario
            .server("S3")
            .load()
            .set_background(LoadProfile::Constant(0.6));
        scenario
            .server("S3")
            .set_contention(qcc_workload::scenario::contention_for(&ServerId::new("S3")));
        let mut lag = None;
        for i in 0..48 {
            let out = scenario
                .federation
                .submit(&QueryType::QT2.sql(i))
                .expect("runs");
            if !out.servers.contains(&ServerId::new("S3")) {
                lag = Some(i + 1);
                break;
            }
        }
        rows.push(vec![
            format!("window={window}"),
            lag.map(|l| l.to_string()).unwrap_or_else(|| ">48".into()),
        ]);
    }
    print_table(
        "Ablation 1 — calibration window vs adaptation lag (queries until re-route)",
        &["config".into(), "lag".into()],
        &rows,
    );
}

/// 2. Per-fragment refinement on/off, over the contrast phases.
fn ablation_fragment_factors(scale: &BenchScale) {
    let schedule = PhaseSchedule {
        phases: PhaseSchedule::paper_table1()
            .phases
            .into_iter()
            .filter(|p| [2, 8].contains(&p.number))
            .collect(),
    };
    let mut rows = Vec::new();
    for (label, min_obs) in [
        ("per-fragment (min_obs=1)", 1usize),
        ("per-server only", usize::MAX),
    ] {
        let config = QccConfig {
            min_fragment_observations: min_obs,
            ..QccConfig::default()
        };
        let scenario = Scenario::build_with_qcc(config, scale.config.clone());
        let result = run_phases_on(
            &scenario,
            Routing::Qcc,
            &schedule,
            scale.instances,
            scale.warmup,
        );
        let mut row = vec![label.to_string()];
        row.extend(result.phases.iter().map(|p| format!("{:.1}", p.avg_ms)));
        rows.push(row);
    }
    print_table(
        "Ablation 2 — fragment-level calibration factors (mean response ms)",
        &["config".into(), "S3 loaded".into(), "all loaded".into()],
        &rows,
    );
}

/// 3. Cost band width over *equal replicas* whose links differ slightly
///    (≈8% cost spread): the 5% band excludes the slower pair, the 20%
///    band admits it, 50% admits everything.
fn ablation_cost_band() {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("v", DataType::Int),
    ]);
    let mut data = Table::new("data", schema.clone());
    for i in 0..3_000i64 {
        data.insert(Row::new(vec![Value::Int(i), Value::Int(i % 20)]))
            .unwrap();
    }

    let mut rows = Vec::new();
    for band in [0.05f64, 0.2, 0.5] {
        // Three replicas with slightly different CPU speeds so their
        // calibrated costs sit ~8% apart.
        let mut network = Network::new();
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("data", schema.clone());
        let mut servers = Vec::new();
        for (i, speed) in [1.0f64, 0.93, 0.86].iter().enumerate() {
            let id = ServerId::new(format!("N{i}"));
            let mut c = Catalog::new();
            c.register(data.clone());
            let mut p = ServerProfile::new(id.clone());
            p.speed = *speed;
            servers.push(RemoteServer::new(p, c));
            network.add_link(
                id.clone(),
                Link::new(0.5, 100_000.0, LoadProfile::Constant(0.0)),
            );
            nicknames.add_source("data", id, "data").expect("defined");
        }
        let network = Arc::new(network);
        let qcc = Qcc::new(QccConfig {
            cost_band: band,
            load_balance: LoadBalanceMode::GlobalLevel,
            ..QccConfig::default()
        });
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            qcc.middleware(),
            FederationConfig::default(),
        );
        for s in &servers {
            fed.add_wrapper(Arc::new(RelationalWrapper::new(
                Arc::clone(s),
                Arc::clone(&network),
            )));
        }
        let sql = "SELECT v, COUNT(*) AS n FROM data GROUP BY v";
        let mut counts = [0usize; 3];
        for _ in 0..24 {
            let out = fed.submit(sql).expect("runs");
            for (i, _) in [0, 1, 2].iter().enumerate() {
                if out.servers.contains(&ServerId::new(format!("N{i}"))) {
                    counts[i] += 1;
                }
            }
        }
        rows.push(vec![
            format!("band={:.0}%", band * 100.0),
            format!("{:.0}%", 100.0 * counts[0] as f64 / 24.0),
            format!("{:.0}%", 100.0 * counts[1] as f64 / 24.0),
            format!("{:.0}%", 100.0 * counts[2] as f64 / 24.0),
        ]);
    }
    print_table(
        "Ablation 3 — cost band vs load spread over near-equal replicas (share of queries)",
        &[
            "config".into(),
            "N0 (fastest)".into(),
            "N1 (−7%)".into(),
            "N2 (−14%)".into(),
        ],
        &rows,
    );
}
