//! Figure 9 (a–d): sensitivity of each query type's response time, per
//! server, to system load.
//!
//! The paper's four panels plot, for each query type, the response time of
//! the three remote servers under low and high load across several query
//! instances. The shapes to verify:
//!
//! * S3 functions best overall in most situations (it would be the naive
//!   default);
//! * for QT2, S3 is much more sensitive to load than the others;
//! * for QT3, a loaded S3 loses to the unloaded S1/S2 — yet remains
//!   competitive when everyone is loaded;
//! * for QT1 and QT4, S3 stays best even under load.

use qcc_bench::{print_table, BenchScale};
use qcc_workload::{sensitivity_sweep, QueryType, ALL_QUERY_TYPES};

fn main() {
    let scale = BenchScale::from_env();
    let points = sensitivity_sweep(&scale.config, scale.instances);

    for qt in ALL_QUERY_TYPES {
        let header: Vec<String> = std::iter::once("instance".to_string())
            .chain(
                ["S1", "S2", "S3"]
                    .iter()
                    .flat_map(|s| [format!("{s} base"), format!("{s} load")]),
            )
            .collect();
        let mut rows = Vec::new();
        for i in 0..scale.instances {
            let mut row = vec![format!("{i}")];
            for server in ["S1", "S2", "S3"] {
                for loaded in [false, true] {
                    let v = points
                        .iter()
                        .find(|p| {
                            p.qt == qt
                                && p.server == server
                                && p.loaded == loaded
                                && p.instance == i
                        })
                        .map(|p| p.response_ms)
                        .unwrap_or(f64::NAN);
                    row.push(format!("{v:.2}"));
                }
            }
            rows.push(row);
        }
        // Averages row.
        let mut avg_row = vec!["avg".to_string()];
        for server in ["S1", "S2", "S3"] {
            for loaded in [false, true] {
                let xs: Vec<f64> = points
                    .iter()
                    .filter(|p| p.qt == qt && p.server == server && p.loaded == loaded)
                    .map(|p| p.response_ms)
                    .collect();
                avg_row.push(format!("{:.2}", xs.iter().sum::<f64>() / xs.len() as f64));
            }
        }
        rows.push(avg_row);
        let panel = match qt {
            QueryType::QT1 => "(a) QT1: large ⋈ large, mild selection, aggregation",
            QueryType::QT2 => "(b) QT2: large ⋈ small selection table",
            QueryType::QT3 => "(c) QT3: large ⋈ large, highly selective",
            QueryType::QT4 => "(d) QT4: three-way join, highly selective",
        };
        print_table(
            &format!("Figure 9 {panel} — response time (ms)"),
            &header,
            &rows,
        );
    }

    // Load-sensitivity summary (the ratios the paper's prose discusses).
    let mut rows = Vec::new();
    for qt in ALL_QUERY_TYPES {
        let mut row = vec![qt.to_string()];
        for server in ["S1", "S2", "S3"] {
            let avg = |loaded: bool| {
                let xs: Vec<f64> = points
                    .iter()
                    .filter(|p| p.qt == qt && p.server == server && p.loaded == loaded)
                    .map(|p| p.response_ms)
                    .collect();
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            row.push(format!("{:.2}x", avg(true) / avg(false)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 9 summary — load slowdown ratio (loaded / base)",
        &["type".into(), "S1".into(), "S2".into(), "S3".into()],
        &rows,
    );
}
