//! Figure 11: benefits of QCC in performance gain over Fixed Assignment 2
//! (everything to S3, the most powerful machine).
//!
//! Shapes to verify: the all-to-S3 default "performs well most of the
//! time" — gains are ≈0 in phases where S3 is unloaded — but QCC wins
//! meaningfully in the phase combinations where S3 carries the update
//! load and alternatives are free (phases 2, 4 and 6).

use qcc_bench::{print_gains, BenchScale};
use qcc_workload::{run_phases, PhaseSchedule, Routing};

fn main() {
    let scale = BenchScale::from_env();
    let schedule = PhaseSchedule::paper_table1();
    let fixed2 = run_phases(
        Routing::Fixed2,
        &scale.config,
        &schedule,
        scale.instances,
        scale.warmup,
    );
    let qcc = run_phases(
        Routing::Qcc,
        &scale.config,
        &schedule,
        scale.instances,
        scale.warmup,
    );
    print_gains(
        "Figure 11 — QCC performance gain over Fixed Assignment 2 (all → S3)",
        &qcc,
        &fixed2,
    );
}
