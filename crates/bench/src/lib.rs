//! Shared plumbing for the figure/table regeneration harnesses.
//!
//! Every bench target in this crate regenerates one table or figure of
//! the paper's §5 evaluation and prints the same rows/series the paper
//! reports. Scale knobs come from the environment so `cargo bench` stays
//! fast by default while full-fidelity runs remain one variable away:
//!
//! * `QCC_LARGE_ROWS` — rows in the large tables (default 40 000; the
//!   paper used ~100 000).
//! * `QCC_SMALL_ROWS` — rows in the small table (default 1 000).
//! * `QCC_INSTANCES` — query instances per type per phase (default 5; the
//!   paper used 10).
//! * `QCC_WARMUP` — unmeasured calibration rounds per phase (default 2).

use qcc_workload::{ExperimentResult, ScenarioConfig};

/// Experiment scale, resolved from the environment.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Scenario sizing.
    pub config: ScenarioConfig,
    /// Instances per query type per phase.
    pub instances: u32,
    /// Warm-up rounds per phase (QCC modes).
    pub warmup: u32,
}

impl BenchScale {
    /// Read the scale from the environment.
    pub fn from_env() -> BenchScale {
        let get = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let config = ScenarioConfig {
            large_rows: get("QCC_LARGE_ROWS", 40_000),
            small_rows: get("QCC_SMALL_ROWS", 1_000),
            ..ScenarioConfig::default()
        };
        BenchScale {
            config,
            instances: get("QCC_INSTANCES", 5) as u32,
            warmup: get("QCC_WARMUP", 2) as u32,
        }
    }
}

/// Print an aligned table: header row then data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format per-phase gains of one run over a baseline, paper-style
/// (percentage response-time reduction).
pub fn print_gains(title: &str, run: &ExperimentResult, baseline: &ExperimentResult) {
    let header: Vec<String> = std::iter::once("".to_string())
        .chain((1..=run.phases.len()).map(|i| format!("Phase{i}")))
        .chain(["Mean".to_string()])
        .collect();
    let gains = run.gain_over(baseline);
    let mean = run.mean_gain_over(baseline);
    let mut row = vec!["gain %".to_string()];
    row.extend(gains.iter().map(|g| format!("{:.1}", g * 100.0)));
    row.push(format!("{:.1}", mean * 100.0));
    let mut base_row = vec!["baseline ms".to_string()];
    base_row.extend(baseline.phases.iter().map(|p| format!("{:.1}", p.avg_ms)));
    base_row.push(String::new());
    let mut run_row = vec!["qcc ms".to_string()];
    run_row.extend(run.phases.iter().map(|p| format!("{:.1}", p.avg_ms)));
    run_row.push(String::new());
    print_table(title, &header, &[base_row, run_row, row]);
}

/// Print the qcc-obs metrics snapshot embedded in a phase result (the
/// cumulative counters/gauges/histograms as of that phase's end), indented
/// under a title. No-op for obs-off runs.
pub fn print_phase_metrics(title: &str, phase: &qcc_workload::PhaseResult) {
    let Some(metrics) = &phase.metrics else {
        return;
    };
    println!("\n== {title} ==");
    for line in metrics.lines() {
        println!("  {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = BenchScale::from_env();
        assert!(s.config.large_rows >= 1000);
        assert!(s.instances >= 1);
    }
}
