//! The four query-fragment types of §5.2.
//!
//! * **QT1** — equijoin on two large tables (100 000 tuples) followed by a
//!   "greater than" selection on the input parameter and an aggregation.
//! * **QT2** — like QT1 but the selection table is small (1 000 tuples).
//! * **QT3** — like QT1 with a much more selective condition.
//! * **QT4** — joins three tables with a highly selective predicate.
//!
//! Instances of a type differ only in the selection parameter, so they
//! share a template signature (and hence calibration history and
//! round-robin state).

use std::fmt;

/// One of the paper's four query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryType {
    /// Large ⋈ large, mild selection, aggregation.
    QT1,
    /// Large ⋈ small, selection on the small table, aggregation.
    QT2,
    /// Large ⋈ large, highly selective.
    QT3,
    /// Three-way join, highly selective.
    QT4,
}

/// All four types, in order.
pub const ALL_QUERY_TYPES: [QueryType; 4] = [
    QueryType::QT1,
    QueryType::QT2,
    QueryType::QT3,
    QueryType::QT4,
];

impl QueryType {
    /// The SQL for instance `i` of this type. Parameters sweep a small
    /// deterministic range so the 10 instances of §5.3 are distinct
    /// queries of one template.
    pub fn sql(&self, instance: u32) -> String {
        let i = instance as i64;
        match self {
            // Selection passes ~70–80% of big_a (sel is uniform 0..10000).
            QueryType::QT1 => format!(
                "SELECT a.grp, COUNT(*) AS n, SUM(b.qty) AS total \
                 FROM big_a a JOIN big_b b ON b.a_id = a.id \
                 WHERE a.sel > {} GROUP BY a.grp",
                2000 + (i % 10) * 100
            ),
            // Selection on the small table's bonus (uniform 0..100).
            QueryType::QT2 => format!(
                "SELECT s.cat, COUNT(*) AS n, AVG(a.val) AS avg_val \
                 FROM big_a a JOIN small_s s ON a.grp = s.id \
                 WHERE s.bonus > {} GROUP BY s.cat",
                20 + (i % 10) * 3
            ),
            // Highly selective: passes ~1% of big_d.
            QueryType::QT3 => format!(
                "SELECT d.grp, COUNT(*) AS n, MIN(d.val) AS lo \
                 FROM big_d d JOIN big_b b ON b.a_id = d.id \
                 WHERE d.sel > {} GROUP BY d.grp",
                9900 + (i % 10) * 5
            ),
            // Three tables; flag equality matches ~1/5000 of big_c.
            QueryType::QT4 => format!(
                "SELECT COUNT(*) AS n, SUM(b.qty) AS total \
                 FROM big_a a JOIN big_b b ON b.a_id = a.id \
                 JOIN big_c c ON c.b_id = b.id \
                 WHERE c.flag = {}",
                100 + (i % 10)
            ),
        }
    }

    /// Recover the query type from a query template signature (used by the
    /// fixed-assignment baselines, which route per registered type).
    pub fn of_template(template: &str) -> Option<QueryType> {
        if template.contains("small_s") {
            Some(QueryType::QT2)
        } else if template.contains("big_c") {
            Some(QueryType::QT4)
        } else if template.contains("big_d") {
            Some(QueryType::QT3)
        } else if template.contains("big_a") {
            Some(QueryType::QT1)
        } else {
            None
        }
    }

    /// Zero-based index (for arrays of per-type metrics).
    pub fn index(&self) -> usize {
        match self {
            QueryType::QT1 => 0,
            QueryType::QT2 => 1,
            QueryType::QT3 => 2,
            QueryType::QT4 => 3,
        }
    }
}

impl fmt::Display for QueryType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryType::QT1 => write!(f, "QT1"),
            QueryType::QT2 => write!(f, "QT2"),
            QueryType::QT3 => write!(f, "QT3"),
            QueryType::QT4 => write!(f, "QT4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_parses() {
        for qt in ALL_QUERY_TYPES {
            for i in 0..3 {
                let sql = qt.sql(i);
                qcc_sql::parse_select(&sql).unwrap_or_else(|e| panic!("{qt} i{i}: {e}"));
            }
        }
    }

    #[test]
    fn instances_share_template() {
        use qcc_federation::decompose;
        // Template identity is what calibration keys on; check via the
        // decomposer's signature over a catalog hosting the tables.
        let scenario = crate::scenario::Scenario::tiny_for_tests();
        for qt in ALL_QUERY_TYPES {
            let a = decompose(&qt.sql(0), scenario.federation.nicknames()).unwrap();
            let b = decompose(&qt.sql(7), scenario.federation.nicknames()).unwrap();
            assert_eq!(a.template_signature, b.template_signature, "{qt}");
        }
    }

    #[test]
    fn types_have_distinct_templates() {
        let scenario = crate::scenario::Scenario::tiny_for_tests();
        use qcc_federation::decompose;
        let sigs: std::collections::BTreeSet<String> = ALL_QUERY_TYPES
            .iter()
            .map(|qt| {
                decompose(&qt.sql(0), scenario.federation.nicknames())
                    .unwrap()
                    .template_signature
            })
            .collect();
        assert_eq!(sigs.len(), 4);
    }

    #[test]
    fn of_template_recovers_type() {
        let scenario = crate::scenario::Scenario::tiny_for_tests();
        use qcc_federation::decompose;
        for qt in ALL_QUERY_TYPES {
            let sig = decompose(&qt.sql(0), scenario.federation.nicknames())
                .unwrap()
                .template_signature;
            assert_eq!(QueryType::of_template(&sig), Some(qt), "sig: {sig}");
        }
        assert_eq!(QueryType::of_template("SELECT 1"), None);
    }
}
