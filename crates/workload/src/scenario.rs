//! The experimental scenario of §5: one II, three remote servers hosting
//! replicated sample tables.
//!
//! *"we created an information integration scenario with one II server and
//! three remote servers ... Each table has been populated with randomly
//! generated data ... the tables are replicated and distributed on the
//! three remote servers such that each server is involved in a diverse set
//! of queries. The tables sizes also varied, with small tables having on
//! the order of 1000s of tuples and large tables having on the order of
//! 100000s of tuples."*
//!
//! Server heterogeneity: S3 is "the most powerful machine among the three
//! available servers" (fastest CPU) but degrades steeply under its update
//! workload for plans touching `small_s` or the `big_a.sel` index — the
//! differential sensitivity Figure 9 documents. S1 and S2 are slower but
//! flatter.

use crate::baselines::FixedRoutingMiddleware;
use qcc_catalog::ReplicaCatalog;
use qcc_common::{Obs, Pcg32, ServerId, SimTime};
use qcc_core::{LoadBalanceMode, Qcc, QccConfig};
use qcc_federation::{
    Federation, FederationConfig, Middleware, NicknameCatalog, PassthroughMiddleware,
};
use qcc_netsim::{Link, LoadProfile, Network, SimClock};
use qcc_remote::{RemoteServer, ServerProfile};
use qcc_storage::{Catalog, ColumnSpec, TableSpec};
use qcc_wrapper::{RelationalWrapper, Wrapper};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Scenario sizing and seeding.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Rows in the large tables (paper: ~100 000).
    pub large_rows: u64,
    /// Rows in the small table (paper: ~1 000).
    pub small_rows: u64,
    /// Data seed.
    pub seed: u64,
    /// Base round-trip latency of each server link in virtual ms.
    pub link_rtt_ms: f64,
    /// Link bandwidth in bytes per virtual ms.
    pub link_bandwidth: f64,
    /// Scatter worker-pool width for the federation (EXPLAIN fan-out,
    /// fragment execution, batched submission). Purely a wall-clock knob:
    /// results are byte-identical for any value ≥ 1.
    pub threads: usize,
    /// Record metrics + journal through qcc-obs (false = every emission
    /// is a no-op; used by benches to measure instrumentation overhead).
    pub obs_enabled: bool,
    /// Per-query retry budget handed to `FederationConfig::retry_limit`
    /// (QCC-driven builds take it from `QccConfig::retry_limit` instead,
    /// so ablations tune one config).
    pub retry_limit: usize,
    /// `(speed, base load sensitivity)` per server, in id order
    /// (S1, S2, ...). Defaults to the paper's three-server mix
    /// [`SERVER_SPEEDS`]; the sim harness randomizes count and shape.
    pub server_specs: Vec<(f64, f64)>,
    /// Source-selection replication bound. 0 (the default) attaches no
    /// replica catalog — the pre-catalog compile path, byte-identical to
    /// every existing golden. > 0 builds a [`ReplicaCatalog`] with this
    /// bound, registers every (table, server) replica in it, and attaches
    /// it to the federation (and the QCC when present), so each query's
    /// EXPLAIN fan-out is pruned to at most this many replicas per
    /// fragment set.
    pub replication_factor: usize,
    /// Mid-query adaptivity knob handed to
    /// `FederationConfig::stall_factor`. 0.0 (the default sentinel) keeps
    /// the call-and-wait execution path and byte-identical goldens; > 0
    /// enables streamed fragments with stall-cancel and remainder reroute
    /// (DESIGN.md §15).
    pub stall_factor: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            large_rows: 100_000,
            small_rows: 1_000,
            seed: 0x5eed,
            link_rtt_ms: 2.0,
            link_bandwidth: 50_000.0,
            threads: qcc_common::default_threads(),
            obs_enabled: true,
            retry_limit: FederationConfig::default().retry_limit,
            server_specs: SERVER_SPEEDS.to_vec(),
            replication_factor: 0,
            stall_factor: FederationConfig::default().stall_factor,
        }
    }
}

impl ScenarioConfig {
    /// A scaled-down config for fast tests (same structure, less data).
    pub fn tiny() -> Self {
        ScenarioConfig {
            large_rows: 2_000,
            small_rows: 100,
            link_rtt_ms: 0.2,
            link_bandwidth: 500_000.0,
            ..ScenarioConfig::default()
        }
    }

    /// A servers-in-the-hundreds configuration: `n_servers` generated
    /// hosts with deterministically varied (and pairwise distinct) speeds,
    /// tiny tables (the fleet exists to be routed over, not scanned hard),
    /// and the replica catalog attached with replication bound 3.
    pub fn scale(n_servers: usize) -> Self {
        ScenarioConfig {
            large_rows: 200,
            small_rows: 40,
            link_rtt_ms: 0.2,
            link_bandwidth: 500_000.0,
            server_specs: scale_server_specs(n_servers, 0x5eed),
            replication_factor: 3,
            ..ScenarioConfig::default()
        }
    }
}

/// Deterministic per-server `(speed, base load sensitivity)` specs for a
/// generated fleet. Speeds are drawn from [0.8, 2.5) and nudged by a
/// per-index epsilon so no two servers tie exactly — source selection and
/// the cost race then have a unique winner, which is what makes
/// pruned-vs-unpruned plan identity checkable at fleet scale.
pub fn scale_server_specs(n_servers: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = Pcg32::new(seed, 0xf1ee7);
    (0..n_servers)
        .map(|i| {
            let speed = rng.range_f64(0.8, 2.5) + i as f64 * 1e-6;
            let sensitivity = rng.range_f64(0.05, 0.40);
            (speed, sensitivity)
        })
        .collect()
}

/// How queries are routed — which middleware drives the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Baseline II: raw cost-based choice, no calibration.
    Baseline,
    /// Fixed registration-time assignment 1 (QT1,QT3→S1, QT2→S2, QT4→S3).
    Fixed1,
    /// Fixed assignment 2: everything to the most powerful server, S3.
    Fixed2,
    /// QCC-calibrated adaptive routing.
    Qcc,
    /// QCC with round-robin load distribution at the given level.
    QccBalanced(LoadBalanceMode),
}

/// The assembled experiment world.
pub struct Scenario {
    /// The three remote servers, in id order (S1, S2, S3).
    pub servers: Vec<Arc<RemoteServer>>,
    /// Wrappers (same order as `servers`).
    pub wrappers: Vec<Arc<dyn Wrapper>>,
    /// The federated integrator.
    pub federation: Federation,
    /// The QCC, when routing is QCC-driven.
    pub qcc: Option<Arc<Qcc>>,
    /// The shared clock.
    pub clock: SimClock,
    /// The network the wrappers route through (exposed so fault
    /// injectors can reshape per-server link congestion mid-run).
    pub network: Arc<Network>,
    /// The scenario-wide observability handle (shared by the federation,
    /// its patroller, and the QCC when present).
    pub obs: Obs,
    /// The replica catalog, when `replication_factor > 0` asked for one.
    /// Shared by the federation (source selection) and the QCC (scoped
    /// invalidation, epoch churn).
    pub catalog: Option<Arc<ReplicaCatalog>>,
}

/// CPU speeds: S3 is the most powerful machine.
pub const SERVER_SPEEDS: [(f64, f64); 3] = [
    // (speed, base load sensitivity)
    (1.0, 0.30), // S1
    (1.1, 0.30), // S2
    (2.0, 0.04), // S3
];

impl Scenario {
    /// Build the full-size paper scenario.
    pub fn build(routing: Routing) -> Scenario {
        Scenario::build_with(routing, ScenarioConfig::default())
    }

    /// Build a scaled-down scenario for tests.
    pub fn tiny_for_tests() -> Scenario {
        Scenario::build_with(Routing::Qcc, ScenarioConfig::tiny())
    }

    /// Build with a custom QCC configuration (ablations tune windows,
    /// bands, thresholds and balancing modes through this).
    pub fn build_with_qcc(qcc_config: QccConfig, config: ScenarioConfig) -> Scenario {
        let threads = config.threads;
        let replication_factor = config.replication_factor;
        let stall_factor = config.stall_factor;
        let obs = if config.obs_enabled {
            Obs::new()
        } else {
            Obs::off()
        };
        let mut scenario = Scenario::build_with(Routing::Baseline, config);
        let qcc = Qcc::with_obs(qcc_config, obs.clone());
        // Rebuild the federation around the QCC middleware, reusing the
        // already-built servers and wrappers.
        let mut federation = Federation::new(
            rebuild_nicknames(&scenario),
            scenario.clock.clone(),
            qcc.middleware(),
            FederationConfig {
                threads,
                retry_limit: qcc.config.retry_limit,
                stall_factor,
                ..FederationConfig::default()
            },
        );
        federation.set_obs(obs.clone());
        for w in &scenario.wrappers {
            federation.add_wrapper(Arc::clone(w));
        }
        // Rebuild the replica catalog too: the baseline build bound its
        // catalog to the obs handle this build discards, and journal
        // events (registration, epoch churn) must land in the live one.
        scenario.catalog = build_replica_catalog(replication_factor, &scenario.servers, &obs);
        if let Some(catalog) = &scenario.catalog {
            federation.set_catalog(Arc::clone(catalog));
            qcc.set_catalog(Arc::clone(catalog));
        }
        scenario.federation = federation;
        scenario.qcc = Some(qcc);
        scenario.obs = obs;
        scenario
    }

    /// Build with explicit sizing.
    pub fn build_with(routing: Routing, config: ScenarioConfig) -> Scenario {
        let specs = table_specs(&config);

        // Identical replicas on every server: same specs, same seed.
        let make_catalog = || {
            let mut c = Catalog::new();
            for spec in &specs {
                c.register(spec.generate(config.seed));
            }
            // Access paths the selective query types exploit.
            c.create_index("big_a", "sel").expect("column exists");
            c.create_index("big_a", "id").expect("column exists");
            c.create_index("big_d", "sel").expect("column exists");
            c.create_index("big_c", "flag").expect("column exists");
            c
        };

        let clock = SimClock::new();
        let mut servers = Vec::new();
        let mut network = Network::new();
        for (i, (speed, base_sensitivity)) in config.server_specs.iter().enumerate() {
            let id = ServerId::new(format!("S{}", i + 1));
            let profile = ServerProfile {
                id: id.clone(),
                speed: *speed,
                base_sensitivity: *base_sensitivity,
                per_query_load: 0.03,
                fault_rate: 0.0,
            };
            servers.push(RemoteServer::new(profile, make_catalog()));
            network.add_link(
                id,
                Link::new(
                    config.link_rtt_ms,
                    config.link_bandwidth,
                    LoadProfile::Constant(0.0),
                ),
            );
        }
        let network = Arc::new(network);

        let mut nicknames = NicknameCatalog::new();
        for spec in &specs {
            nicknames.define(&spec.name, spec.schema());
            for s in &servers {
                nicknames
                    .add_source(&spec.name, s.id().clone(), &spec.name)
                    .expect("nickname defined above");
            }
        }

        let obs = if config.obs_enabled {
            Obs::new()
        } else {
            Obs::off()
        };
        let (middleware, qcc): (Arc<dyn Middleware>, Option<Arc<Qcc>>) = match routing {
            Routing::Baseline => (Arc::new(PassthroughMiddleware::with_cache()), None),
            Routing::Fixed1 => (
                Arc::new(FixedRoutingMiddleware::new(
                    crate::baselines::FIXED_ASSIGNMENT_1(),
                )),
                None,
            ),
            Routing::Fixed2 => (
                Arc::new(FixedRoutingMiddleware::new(
                    crate::baselines::FIXED_ASSIGNMENT_2(),
                )),
                None,
            ),
            Routing::Qcc => {
                let qcc = Qcc::with_obs(QccConfig::default(), obs.clone());
                (qcc.middleware(), Some(qcc))
            }
            Routing::QccBalanced(mode) => {
                let qcc = Qcc::with_obs(QccConfig::with_load_balance(mode), obs.clone());
                (qcc.middleware(), Some(qcc))
            }
        };

        let mut federation = Federation::new(
            nicknames,
            clock.clone(),
            middleware,
            FederationConfig {
                threads: config.threads,
                retry_limit: config.retry_limit,
                stall_factor: config.stall_factor,
                ..FederationConfig::default()
            },
        );
        federation.set_obs(obs.clone());
        let mut wrappers: Vec<Arc<dyn Wrapper>> = Vec::new();
        for s in &servers {
            let w: Arc<dyn Wrapper> =
                Arc::new(RelationalWrapper::new(Arc::clone(s), Arc::clone(&network)));
            federation.add_wrapper(Arc::clone(&w));
            wrappers.push(w);
        }

        let catalog = build_replica_catalog(config.replication_factor, &servers, &obs);
        if let Some(catalog) = &catalog {
            federation.set_catalog(Arc::clone(catalog));
            if let Some(qcc) = &qcc {
                qcc.set_catalog(Arc::clone(catalog));
            }
        }

        Scenario {
            servers,
            wrappers,
            federation,
            qcc,
            clock,
            network,
            obs,
            catalog,
        }
    }

    /// The server with the given id.
    pub fn server(&self, id: &str) -> &Arc<RemoteServer> {
        self.servers
            .iter()
            .find(|s| s.id().as_str() == id)
            .expect("known server id")
    }
}

/// Build the replica catalog for a fleet: every table on every server
/// (the scenario keeps full replication; the bound caps *consultation*,
/// not placement), cost hints of `1 / speed` — the same scaling the
/// wrappers' raw EXPLAIN estimates carry, so the catalog's pre-EXPLAIN
/// ranking agrees with the post-EXPLAIN cost race and the capped survivor
/// set always contains the eventual winner.
fn build_replica_catalog(
    replication_factor: usize,
    servers: &[Arc<RemoteServer>],
    obs: &Obs,
) -> Option<Arc<ReplicaCatalog>> {
    if replication_factor == 0 {
        return None;
    }
    let catalog = ReplicaCatalog::new(replication_factor).with_obs(obs.clone());
    for s in servers {
        let hint = 1.0 / s.profile().speed;
        for table in s.engine().catalog().table_names() {
            catalog.register(table, s.id().clone(), hint, SimTime::ZERO);
        }
    }
    Some(Arc::new(catalog))
}

/// Re-derive the nickname catalog from an existing scenario's servers.
fn rebuild_nicknames(scenario: &Scenario) -> NicknameCatalog {
    let mut nicknames = NicknameCatalog::new();
    for table in scenario.servers[0].engine().catalog().table_names() {
        let schema = scenario.servers[0]
            .engine()
            .catalog()
            .entry(table)
            .expect("listed table exists")
            .table
            .schema()
            .clone();
        nicknames.define(table, schema);
        for s in &scenario.servers {
            nicknames
                .add_source(table, s.id().clone(), table)
                .expect("nickname defined above");
        }
    }
    nicknames
}

/// The sample tables: three large, one small, per the paper's size mix.
fn table_specs(config: &ScenarioConfig) -> Vec<TableSpec> {
    vec![
        TableSpec::new(
            "big_a",
            config.large_rows,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "grp".into(),
                    lo: 0,
                    hi: config.small_rows.max(1) as i64,
                },
                ColumnSpec::FloatUniform {
                    name: "val".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
                ColumnSpec::IntUniform {
                    name: "sel".into(),
                    lo: 0,
                    hi: 10_000,
                },
            ],
        ),
        TableSpec::new(
            "big_d",
            config.large_rows,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "grp".into(),
                    lo: 0,
                    hi: config.small_rows.max(1) as i64,
                },
                ColumnSpec::FloatUniform {
                    name: "val".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
                ColumnSpec::IntUniform {
                    name: "sel".into(),
                    lo: 0,
                    hi: 10_000,
                },
            ],
        ),
        TableSpec::new(
            "big_b",
            config.large_rows,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "a_id".into(),
                    lo: 0,
                    hi: config.large_rows as i64,
                },
                ColumnSpec::IntUniform {
                    name: "qty".into(),
                    lo: 0,
                    hi: 100,
                },
            ],
        ),
        TableSpec::new(
            "big_c",
            config.large_rows,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "b_id".into(),
                    lo: 0,
                    hi: config.large_rows as i64,
                },
                ColumnSpec::IntUniform {
                    name: "flag".into(),
                    lo: 0,
                    hi: 5_000,
                },
            ],
        ),
        TableSpec::new(
            "small_s",
            config.small_rows,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::StrPool {
                    name: "cat".into(),
                    pool_size: 10,
                },
                ColumnSpec::FloatUniform {
                    name: "bonus".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
            ],
        ),
    ]
}

/// Per-table / per-index contention each server suffers while its update
/// workload runs (phase "Load" state). See DESIGN.md: these are the
/// heterogeneity knobs that produce Figure 9's shapes.
pub fn contention_for(server: &ServerId) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    match server.as_str() {
        // S1/S2: flat moderate contention everywhere; updates on the small
        // table and the indexes contend a bit harder.
        "S1" | "S2" => {
            for t in ["big_a", "big_b", "big_c"] {
                m.insert(t.to_string(), 0.15);
            }
            m.insert("big_d".into(), 0.30);
            m.insert("small_s".into(), 0.40);
        }
        // S3: nearly insensitive for most scans, but its update workload
        // hammers small_s and big_d — the paper's "for QT2, S3 is much
        // more sensitive to load than the others" (and likewise QT3,
        // whose tables include big_d).
        "S3" => {
            m.insert("small_s".into(), 1.10);
            m.insert("big_d".into(), 1.10);
        }
        _ => {}
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_with_replicated_tables() {
        let s = Scenario::tiny_for_tests();
        assert_eq!(s.servers.len(), 3);
        for srv in &s.servers {
            let names = srv.engine().catalog().table_names();
            assert_eq!(names, vec!["big_a", "big_b", "big_c", "big_d", "small_s"]);
        }
        // Every nickname resolvable on every server.
        let common = s
            .federation
            .nicknames()
            .common_servers(&["big_a", "big_b", "big_c", "big_d", "small_s"])
            .unwrap();
        assert_eq!(common.len(), 3);
    }

    #[test]
    fn replicas_hold_identical_data() {
        let s = Scenario::tiny_for_tests();
        let a = s.server("S1").engine().catalog().entry("big_a").unwrap();
        let b = s.server("S3").engine().catalog().entry("big_a").unwrap();
        assert_eq!(a.table.rows(), b.table.rows());
    }

    #[test]
    fn s3_is_fastest() {
        let s = Scenario::tiny_for_tests();
        assert!(s.server("S3").profile().speed > s.server("S1").profile().speed);
    }

    #[test]
    fn queries_execute_end_to_end() {
        let s = Scenario::tiny_for_tests();
        for qt in crate::ALL_QUERY_TYPES {
            let out = s
                .federation
                .submit(&qt.sql(0))
                .unwrap_or_else(|e| panic!("{qt}: {e}"));
            assert!(out.response_ms > 0.0, "{qt}");
        }
    }

    #[test]
    fn default_build_attaches_no_catalog() {
        // replication_factor 0 must leave the compile path exactly as it
        // was pre-catalog: no catalog object, no catalog journal events.
        let s = Scenario::tiny_for_tests();
        assert!(s.catalog.is_none());
        s.federation.submit("SELECT COUNT(*) FROM small_s").unwrap();
        assert!(s.obs.events_of("catalog_register").is_empty());
        assert!(s.obs.events_of("catalog_prune").is_empty());
    }

    #[test]
    fn scale_build_prunes_explain_fan_out_to_the_replication_bound() {
        let n = 20;
        let config = ScenarioConfig::scale(n);
        assert_eq!(config.server_specs.len(), n);
        let s = Scenario::build_with(Routing::Qcc, config);
        let catalog = s.catalog.as_ref().expect("scale build attaches a catalog");
        assert_eq!(catalog.bound(), 3);
        assert_eq!(catalog.replicas("big_a").len(), n, "full replication");

        s.federation.submit("SELECT COUNT(*) FROM small_s").unwrap();
        let spans = s.obs.events_of("compile");
        assert_eq!(spans.len(), 1);
        let tasks = spans[0].field("explain_tasks").expect("span field");
        let tasks = match tasks {
            qcc_common::FieldValue::U64(v) => *v as usize,
            other => panic!("unexpected field {other:?}"),
        };
        assert!(
            tasks <= 3,
            "one fragment × bound 3: got {tasks} EXPLAIN tasks over {n} servers"
        );
        assert!(
            s.obs.counter_value("catalog_candidates_pruned_total", &[]) as usize >= n - 3,
            "pruned candidates are counted"
        );
        assert_eq!(s.obs.events_of("catalog_prune").len(), 1);
    }

    /// Pruning soundness (seeded property): across fleets and seeds, the
    /// plan chosen over the pruned candidate set is the plan chosen over
    /// the full set — same signature, same cost. Pruning may only change
    /// how many servers are *consulted*, never which plan wins.
    #[test]
    fn pruned_and_unpruned_compiles_choose_identical_plans() {
        for seed in [1u64, 7, 42] {
            for n in [8usize, 17] {
                let mut pruned_cfg = ScenarioConfig::scale(n);
                pruned_cfg.seed = seed;
                pruned_cfg.server_specs = scale_server_specs(n, seed);
                let mut full_cfg = pruned_cfg.clone();
                full_cfg.replication_factor = 0;
                let pruned = Scenario::build_with(Routing::Qcc, pruned_cfg);
                let full = Scenario::build_with(Routing::Qcc, full_cfg);
                for sql in [
                    "SELECT COUNT(*) FROM small_s",
                    "SELECT a.sel, COUNT(*) AS n FROM big_a a WHERE a.sel < 500 \
                     GROUP BY a.sel ORDER BY a.sel",
                ] {
                    let (_, pc) = pruned.federation.explain_global(sql).unwrap();
                    let (_, fc) = full.federation.explain_global(sql).unwrap();
                    assert!(pc.len() <= fc.len());
                    assert_eq!(
                        pc[0].signature(),
                        fc[0].signature(),
                        "winner diverged (seed {seed}, n {n}, {sql})"
                    );
                    assert!(
                        (pc[0].total_cost() - fc[0].total_cost()).abs() < 1e-9,
                        "winning cost diverged (seed {seed}, n {n}, {sql})"
                    );
                }
            }
        }
    }

    #[test]
    fn all_query_types_return_identical_rows_from_any_server() {
        // Correctness does not depend on routing: force each server via
        // the fixed baselines and compare results.
        let qcc = Scenario::build_with(Routing::Qcc, ScenarioConfig::tiny());
        let f2 = Scenario::build_with(Routing::Fixed2, ScenarioConfig::tiny());
        for qt in crate::ALL_QUERY_TYPES {
            let a = qcc.federation.submit(&qt.sql(1)).unwrap();
            let b = f2.federation.submit(&qt.sql(1)).unwrap();
            let mut ra = a.rows.clone();
            let mut rb = b.rows.clone();
            ra.sort_by(|x, y| x.values().cmp(y.values()));
            rb.sort_by(|x, y| x.values().cmp(y.values()));
            assert_eq!(ra, rb, "{qt}");
        }
    }
}
