//! Table 1's load phases and the load driver.
//!
//! Each phase places a subset of {S1, S2, S3} under a heavy update
//! workload (Step 4 of §5.1: *"Servers are hit with a heavy update
//! load"*). Load manifests as high background utilization plus per-table
//! and per-index contention — see [`crate::scenario::contention_for`].

use crate::scenario::{contention_for, Scenario};
use qcc_common::ServerId;
use qcc_netsim::LoadProfile;
use std::collections::{BTreeMap, BTreeSet};

/// Background utilization of a server under the heavy update workload.
pub const HIGH_LOAD: f64 = 0.85;

/// One phase: which servers run the update workload.
#[derive(Debug, Clone)]
pub struct Phase {
    /// 1-based phase number.
    pub number: usize,
    /// Servers under load.
    pub loaded: BTreeSet<ServerId>,
}

impl Phase {
    /// Is this server loaded in this phase?
    pub fn is_loaded(&self, server: &ServerId) -> bool {
        self.loaded.contains(server)
    }

    /// Table-1-style row: Base/Load per server.
    pub fn describe(&self) -> String {
        let cell = |s: &str| {
            if self.loaded.contains(&ServerId::new(s)) {
                "Load"
            } else {
                "Base"
            }
        };
        format!(
            "Phase{}: S1={} S2={} S3={}",
            self.number,
            cell("S1"),
            cell("S2"),
            cell("S3")
        )
    }
}

/// The experiment's phase list.
#[derive(Debug, Clone)]
pub struct PhaseSchedule {
    /// Phases in order.
    pub phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// Exactly Table 1: all 8 combinations of loading S1/S2/S3, in the
    /// paper's column order.
    pub fn paper_table1() -> PhaseSchedule {
        let rows: [&[&str]; 8] = [
            &[],
            &["S3"],
            &["S2"],
            &["S2", "S3"],
            &["S1"],
            &["S1", "S3"],
            &["S1", "S2"],
            &["S1", "S2", "S3"],
        ];
        PhaseSchedule {
            phases: rows
                .iter()
                .enumerate()
                .map(|(i, servers)| Phase {
                    number: i + 1,
                    loaded: servers.iter().map(ServerId::new).collect(),
                })
                .collect(),
        }
    }
}

/// Apply a phase's load state to the scenario's servers.
pub fn apply_phase(scenario: &Scenario, phase: &Phase) {
    for server in &scenario.servers {
        if phase.is_loaded(server.id()) {
            server
                .load()
                .set_background(LoadProfile::Constant(HIGH_LOAD));
            server.set_contention(contention_for(server.id()));
        } else {
            server.load().set_background(LoadProfile::Constant(0.0));
            server.set_contention(BTreeMap::new());
        }
    }
}

/// Return every server to the unloaded state.
pub fn clear_phase(scenario: &Scenario) {
    for server in &scenario.servers {
        server.load().set_background(LoadProfile::Constant(0.0));
        server.set_contention(BTreeMap::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_combinations() {
        let s = PhaseSchedule::paper_table1();
        assert_eq!(s.phases.len(), 8);
        let sets: BTreeSet<BTreeSet<ServerId>> =
            s.phases.iter().map(|p| p.loaded.clone()).collect();
        assert_eq!(sets.len(), 8, "all subsets distinct");
        // Paper column order: S3 toggles fastest, S1 slowest.
        assert!(s.phases[0].loaded.is_empty());
        assert!(s.phases[1].is_loaded(&ServerId::new("S3")));
        assert!(s.phases[4].is_loaded(&ServerId::new("S1")));
        assert_eq!(s.phases[7].loaded.len(), 3);
    }

    #[test]
    fn describe_formats_table_row() {
        let s = PhaseSchedule::paper_table1();
        assert_eq!(s.phases[3].describe(), "Phase4: S1=Base S2=Load S3=Load");
    }

    #[test]
    fn apply_phase_sets_and_clears_load() {
        use qcc_common::SimTime;
        let scenario = Scenario::tiny_for_tests();
        let schedule = PhaseSchedule::paper_table1();
        apply_phase(&scenario, &schedule.phases[1]); // S3 loaded
        assert!(
            scenario.server("S3").load().utilization(SimTime::ZERO) > 0.8,
            "S3 loaded"
        );
        assert!(scenario.server("S1").load().utilization(SimTime::ZERO) < 0.01);
        clear_phase(&scenario);
        assert!(scenario.server("S3").load().utilization(SimTime::ZERO) < 0.01);
    }
}
