//! Open-loop saturation driver.
//!
//! The phase experiments (§5) are *closed-loop*: each batch waits for the
//! previous one, so offered load can never exceed service capacity. This
//! module generates an **open-loop** arrival process — Poisson
//! interarrivals drawn from the deterministic `Pcg32`, laid out on the
//! virtual timeline up front — and drives it through the federation so the
//! system can be pushed *past* saturation. With an
//! [`AdmissionController`] attached the backlog turns into bounded
//! queueing plus shedding; without one every due arrival dispatches
//! immediately and each server's inflight count (held via RAII
//! [`qcc_netsim::InflightGuard`]s for the duration of the round) drives
//! utilization — and therefore response times — up round over round.
//!
//! Everything here runs on the coordinator thread between `submit_batch`
//! calls: arrival admission, capacity refresh, dequeue and guard
//! placement are all pure functions of the precomputed arrival sequence
//! and the frozen adaptive state, so a run is byte-identical for any
//! `QCC_THREADS` (see `tests/admission_determinism.rs`).

use crate::querytypes::{QueryType, ALL_QUERY_TYPES};
use crate::scenario::Scenario;
use qcc_admission::{AdmissionController, PriorityClass, QueueTicket};
use qcc_common::{Pcg32, QccError, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// One scheduled arrival of the open-loop process.
#[derive(Debug, Clone)]
pub struct ArrivalEvent {
    /// Scheduled arrival time on the virtual timeline.
    pub at: SimTime,
    /// The query type this arrival instantiates.
    pub qt: QueryType,
    /// Concrete SQL text.
    pub sql: String,
    /// Priority class (QT4 is latency-critical, QT1 best-effort).
    pub class: PriorityClass,
}

/// Priority assignment for the paper's query mix: the very selective
/// point-ish QT4 rides `High`, the heavy scan-and-aggregate QT1 rides
/// `Low`, the rest are `Normal`.
pub fn class_of(qt: QueryType) -> PriorityClass {
    match qt {
        QueryType::QT4 => PriorityClass::High,
        QueryType::QT1 => PriorityClass::Low,
        _ => PriorityClass::Normal,
    }
}

/// Generate `count` Poisson arrivals at `rate_per_ms` (exponential
/// interarrival times via inverse transform on `Pcg32`), cycling query
/// types uniformly at random with randomized instances. The whole
/// sequence is materialized up front, so the offered load is independent
/// of how fast the system drains it — the defining open-loop property.
pub fn poisson_arrivals(rate_per_ms: f64, count: usize, seed: u64) -> Vec<ArrivalEvent> {
    let mut rng = Pcg32::seed_from(seed);
    let mut t = 0.0f64;
    let mut arrivals = Vec::with_capacity(count);
    for _ in 0..count {
        // u ∈ [0,1) so 1-u ∈ (0,1]: ln is finite, dt ≥ 0.
        let u = rng.next_f64();
        t += -(1.0 - u).ln() / rate_per_ms;
        let qt = ALL_QUERY_TYPES[rng.range_u64(0, ALL_QUERY_TYPES.len() as u64) as usize];
        let instance = rng.range_u64(0, 10) as u32;
        arrivals.push(ArrivalEvent {
            at: SimTime::from_millis(t),
            qt,
            sql: qt.sql(instance),
            class: class_of(qt),
        });
    }
    arrivals
}

/// One query that made it all the way through.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// Query-type name ("QT1"…).
    pub template: String,
    /// Scheduled arrival time.
    pub arrived: SimTime,
    /// Arrival → merged-result latency (queue wait + execution).
    pub response_ms: f64,
}

/// Outcome of an open-loop run.
#[derive(Debug, Default)]
pub struct OpenLoopReport {
    /// Queries that completed, in dispatch order.
    pub completed: Vec<CompletedQuery>,
    /// Queries shed by admission (queue full / queue deadline / no tokens).
    pub shed: u64,
    /// Queries that failed for non-admission reasons.
    pub failed: u64,
    /// Dispatch rounds executed.
    pub rounds: usize,
    /// Mean arrival→completion response per round (the admission-off
    /// saturation signature: monotone growth).
    pub round_mean_response_ms: Vec<f64>,
}

impl OpenLoopReport {
    /// The `p`-quantile (0–100) of completed response times, by the
    /// nearest-rank method. Zero if nothing completed.
    pub fn response_percentile(&self, p: f64) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let mut times: Vec<f64> = self.completed.iter().map(|c| c.response_ms).collect();
        times.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * times.len() as f64).ceil() as usize;
        times[rank.saturating_sub(1).min(times.len() - 1)]
    }

    /// Queries that completed within `deadline_ms` of *arrival* — the
    /// goodput numerator under overload.
    pub fn goodput(&self, deadline_ms: f64) -> usize {
        self.completed
            .iter()
            .filter(|c| c.response_ms <= deadline_ms)
            .count()
    }
}

/// How the open-loop driver hands arrivals to the federation.
#[derive(Debug, Clone, Copy)]
pub enum AdmissionMode<'a> {
    /// Full admission control: priority/WFQ queue, calibration-derived
    /// token capacities, queue + execution deadlines, shedding.
    Admitted(&'a AdmissionController),
    /// No admission: strict-FIFO dispatch through a fixed pool of `width`
    /// concurrent queries (a real integrator's connection/worker pool).
    /// Nothing is ever shed and nothing has a deadline, so past
    /// saturation the backlog — and with it every later query's
    /// response time — grows without bound.
    Unprotected {
        /// Concurrent queries per dispatch round.
        width: usize,
    },
}

/// Drive a precomputed arrival sequence through `scenario`'s federation.
///
/// In [`AdmissionMode::Admitted`] the loop is: admit due arrivals into
/// the queue (immediate shed if full) → refresh per-server token
/// capacities from QCC state → dequeue a quota-bounded WFQ batch
/// (queue-deadline sheds happen here) → dispatch it as one
/// `submit_batch`. In [`AdmissionMode::Unprotected`] the oldest `width`
/// pending arrivals dispatch each round, unconditionally.
///
/// During each round the driver holds one inflight guard per dispatched
/// query, assigned round-robin across the scenario's servers in dispatch
/// order, so batch width feeds back into server utilization (the hot-spot
/// feedback loop the phase driver models the same way). Guard counts are
/// constant for the whole batch, keeping execution deterministic.
pub fn run_open_loop(
    scenario: &Scenario,
    mode: AdmissionMode<'_>,
    arrivals: &[ArrivalEvent],
) -> OpenLoopReport {
    match mode {
        AdmissionMode::Admitted(admission) => run_admitted(scenario, admission, arrivals),
        AdmissionMode::Unprotected { width } => run_unprotected(scenario, arrivals, width),
    }
}

fn run_admitted(
    scenario: &Scenario,
    admission: &AdmissionController,
    arrivals: &[ArrivalEvent],
) -> OpenLoopReport {
    let server_ids: Vec<_> = scenario.servers.iter().map(|s| s.id().clone()).collect();
    let mut report = OpenLoopReport::default();
    let mut next = 0usize;
    loop {
        let now = scenario.clock.now();
        while next < arrivals.len() && arrivals[next].at <= now {
            let a = &arrivals[next];
            if admission
                .enqueue(&a.sql, &a.qt.to_string(), a.class, a.at)
                .is_err()
            {
                report.shed += 1;
            }
            next += 1;
        }
        if admission.queue_depth() == 0 {
            if next >= arrivals.len() {
                break;
            }
            // Idle: jump to the next scheduled arrival.
            scenario.clock.advance_to(arrivals[next].at);
            continue;
        }
        // Coordinator-side capacity refresh between batches; the batch
        // below gates against this frozen snapshot.
        if let Some(qcc) = &scenario.qcc {
            qcc.refresh_admission(admission, &server_ids, now);
        }
        let batch = admission.dequeue_batch(now);
        report.shed += batch.shed.len() as u64;
        if batch.admitted.is_empty() {
            continue; // everything popped this round was doomed; queue shrank
        }
        dispatch_round(scenario, Some(admission), &batch.admitted, now, &mut report);
    }
    report
}

fn run_unprotected(scenario: &Scenario, arrivals: &[ArrivalEvent], width: usize) -> OpenLoopReport {
    let width = width.max(1);
    let mut report = OpenLoopReport::default();
    let mut pending: VecDeque<QueueTicket> = VecDeque::new();
    let mut next = 0usize;
    let mut seq = 0u64;
    loop {
        let now = scenario.clock.now();
        while next < arrivals.len() && arrivals[next].at <= now {
            let a = &arrivals[next];
            pending.push_back(QueueTicket {
                seq,
                sql: a.sql.clone(),
                template: a.qt.to_string(),
                class: a.class,
                enqueued_at: a.at,
                deadline_ms: f64::INFINITY, // unprotected: nothing has a deadline
            });
            seq += 1;
            next += 1;
        }
        if pending.is_empty() {
            if next >= arrivals.len() {
                break;
            }
            scenario.clock.advance_to(arrivals[next].at);
            continue;
        }
        // No admission: the oldest `width` pending queries dispatch, the
        // rest wait for the pool — nothing is ever refused.
        let take = width.min(pending.len());
        let round: Vec<QueueTicket> = pending.drain(..take).collect();
        dispatch_round(scenario, None, &round, now, &mut report);
    }
    report
}

/// Dispatch one round as a single `submit_batch`, holding an inflight
/// guard per query for the round's duration. With admission attached the
/// guards follow the deadline-aware token slot plan (earliest-deadline
/// tickets ride the healthiest servers, and each server carries at most
/// its token capacity per cycle); without one — or before the first
/// capacity refresh — placement is round-robin. Each admitted ticket also
/// hands the federation its remaining deadline budget, and completed
/// outcomes feed the per-template execution estimator back.
fn dispatch_round(
    scenario: &Scenario,
    admission: Option<&AdmissionController>,
    tickets: &[QueueTicket],
    dispatched_at: SimTime,
    report: &mut OpenLoopReport,
) {
    let slots = admission
        .map(|a| a.dispatch_slots(tickets.len()))
        .unwrap_or_default();
    let server_index: BTreeMap<&str, usize> = scenario
        .servers
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id().as_str(), i))
        .collect();
    let guards: Vec<_> = tickets
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let idx = slots
                .get(i)
                .and_then(|sid| server_index.get(sid.as_str()).copied())
                .unwrap_or(i % scenario.servers.len());
            scenario.servers[idx].load().begin_query()
        })
        .collect();
    let sqls: Vec<String> = tickets.iter().map(|t| t.sql.clone()).collect();
    let outcomes = match admission {
        Some(_) => {
            let budgets: Vec<Option<f64>> = tickets
                .iter()
                .map(|t| t.remaining_budget_ms(dispatched_at))
                .collect();
            scenario
                .federation
                .submit_batch_with_budgets(&sqls, &budgets)
        }
        None => scenario.federation.submit_batch(&sqls),
    };
    drop(guards);
    let wait_ms: Vec<f64> = tickets
        .iter()
        .map(|t| dispatched_at.since(t.enqueued_at).as_millis())
        .collect();
    let mut round_sum = 0.0;
    let mut round_n = 0usize;
    for ((ticket, outcome), wait) in tickets.iter().zip(outcomes).zip(wait_ms) {
        match outcome {
            Ok(out) => {
                if let Some(admission) = admission {
                    admission.record_exec(&ticket.template, out.response_ms);
                }
                let response_ms = wait + out.response_ms;
                round_sum += response_ms;
                round_n += 1;
                report.completed.push(CompletedQuery {
                    template: ticket.template.clone(),
                    arrived: ticket.enqueued_at,
                    response_ms,
                });
            }
            Err(QccError::Shed(_)) => report.shed += 1,
            Err(_) => report.failed += 1,
        }
    }
    if round_n > 0 {
        report
            .round_mean_response_ms
            .push(round_sum / round_n as f64);
    }
    report.rounds += 1;
}
