//! Fixed-assignment baselines (§5.3).
//!
//! *"We assume a typical federated information system in which how
//! federated queries are distributed to remote servers are fixed and
//! pre-determined in the phase of nickname definition registration."*
//!
//! Assignment 1: QT1, QT3 → S1; QT2 → S2; QT4 → S3 (the paper's
//! registration). Assignment 2: everything → S3, "one natural way of load
//! distribution is to pick S3 as the default server" (Figure 11).

use crate::querytypes::QueryType;
use qcc_common::{FragmentId, QueryId, Result, ServerId, SimDuration, SimTime};
use qcc_federation::{
    Deferred, FragmentCandidate, GlobalCandidate, Middleware, PassthroughMiddleware,
};
use qcc_wrapper::{FragmentPlan, Wrapper, WrapperResult};
use std::collections::BTreeMap;

/// The paper's registration-time assignment (Figure 10's baseline).
#[allow(non_snake_case)]
pub fn FIXED_ASSIGNMENT_1() -> BTreeMap<QueryType, ServerId> {
    BTreeMap::from([
        (QueryType::QT1, ServerId::new("S1")),
        (QueryType::QT2, ServerId::new("S2")),
        (QueryType::QT3, ServerId::new("S1")),
        (QueryType::QT4, ServerId::new("S3")),
    ])
}

/// Everything to the most powerful server (Figure 11's baseline).
#[allow(non_snake_case)]
pub fn FIXED_ASSIGNMENT_2() -> BTreeMap<QueryType, ServerId> {
    BTreeMap::from([
        (QueryType::QT1, ServerId::new("S3")),
        (QueryType::QT2, ServerId::new("S3")),
        (QueryType::QT3, ServerId::new("S3")),
        (QueryType::QT4, ServerId::new("S3")),
    ])
}

/// A middleware that routes each query type to its registered server,
/// ignoring costs — the behaviour of a federation whose nicknames were
/// bound to specific servers at registration time.
#[derive(Debug)]
pub struct FixedRoutingMiddleware {
    assignment: BTreeMap<QueryType, ServerId>,
    inner: PassthroughMiddleware,
}

impl FixedRoutingMiddleware {
    /// Route per the given type → server table.
    pub fn new(assignment: BTreeMap<QueryType, ServerId>) -> Self {
        FixedRoutingMiddleware {
            assignment,
            // Plan caching is shared integrator infrastructure: the fixed
            // baselines get it too, so comparisons with the QCC isolate
            // routing effects rather than compile-time round trips.
            inner: PassthroughMiddleware::with_cache(),
        }
    }
}

impl Middleware for FixedRoutingMiddleware {
    fn plan_fragment(
        &self,
        wrapper: &dyn Wrapper,
        query: QueryId,
        fragment: FragmentId,
        sql: &str,
        at: SimTime,
        effects: &mut Deferred,
    ) -> Result<(Vec<FragmentCandidate>, SimDuration)> {
        self.inner
            .plan_fragment(wrapper, query, fragment, sql, at, effects)
    }

    fn execute_fragment(
        &self,
        wrapper: &dyn Wrapper,
        query: QueryId,
        fragment: FragmentId,
        plan: &FragmentPlan,
        at: SimTime,
        effects: &mut Deferred,
    ) -> Result<WrapperResult> {
        self.inner
            .execute_fragment(wrapper, query, fragment, plan, at, effects)
    }

    fn choose_global(
        &self,
        query_sig: &str,
        candidates: &[GlobalCandidate],
        effects: &mut Deferred,
    ) -> usize {
        if let Some(target) =
            QueryType::of_template(query_sig).and_then(|qt| self.assignment.get(&qt))
        {
            // Pick the cheapest candidate running entirely on the target
            // server; the assignment is absolute, not cost-based.
            if let Some((i, _)) = candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    let set = c.server_set();
                    set.len() == 1 && set.contains(target)
                })
                .min_by(|(_, a), (_, b)| a.total_cost().total_cmp(&b.total_cost()))
            {
                return i;
            }
        }
        // Unknown template or target unavailable: fall back to cost.
        self.inner.choose_global(query_sig, candidates, effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Routing, Scenario, ScenarioConfig};
    use crate::ALL_QUERY_TYPES;

    #[test]
    fn fixed1_routes_per_registration() {
        let s = Scenario::build_with(Routing::Fixed1, ScenarioConfig::tiny());
        let expected = FIXED_ASSIGNMENT_1();
        for qt in ALL_QUERY_TYPES {
            let out = s.federation.submit(&qt.sql(0)).unwrap();
            let want = expected.get(&qt).unwrap();
            assert!(
                out.servers.contains(want) && out.servers.len() == 1,
                "{qt} went to {:?}, want {want}",
                out.servers
            );
        }
    }

    #[test]
    fn fixed2_routes_everything_to_s3() {
        let s = Scenario::build_with(Routing::Fixed2, ScenarioConfig::tiny());
        for qt in ALL_QUERY_TYPES {
            let out = s.federation.submit(&qt.sql(0)).unwrap();
            assert!(out.servers.contains(&ServerId::new("S3")), "{qt}");
            assert_eq!(out.servers.len(), 1, "{qt}");
        }
    }
}
