//! The paper's experimental scenario and drivers (§5).
//!
//! * [`scenario`] — one II plus three remote DB servers (`S1`, `S2`,
//!   `S3`), sample tables (small ≈ 1 000 rows, large ≈ 100 000) replicated
//!   across all servers, S3 "the most powerful machine".
//! * [`querytypes`] — the four query-fragment types of §5.2 with
//!   parameterized instances.
//! * [`phases`] — Table 1's eight combinations of server load, and the
//!   load driver that applies them (background utilization plus per-table
//!   and per-index contention from the heavy update workload).
//! * [`baselines`] — the two fixed-assignment baselines of Figures 10–11:
//!   registration-time routing (QT1,QT3→S1, QT2→S2, QT4→S3) and
//!   default-best-server routing (everything→S3).
//! * [`experiment`] — the driver that runs a workload through a federation
//!   per phase and collects per-type and per-phase response-time averages.
//! * [`openloop`] — Poisson open-loop arrival generator and saturation
//!   driver for the admission-control experiments (queueing, shedding,
//!   deadlines past the service capacity).

pub mod baselines;
pub mod experiment;
pub mod openloop;
pub mod phases;
pub mod querytypes;
pub mod scenario;

pub use baselines::{FixedRoutingMiddleware, FIXED_ASSIGNMENT_1, FIXED_ASSIGNMENT_2};
pub use experiment::{
    run_phases, run_phases_on, sensitivity_sweep, ExperimentResult, PhaseResult, SensitivityPoint,
};
pub use openloop::{
    class_of, poisson_arrivals, run_open_loop, AdmissionMode, ArrivalEvent, CompletedQuery,
    OpenLoopReport,
};
pub use phases::{apply_phase, clear_phase, Phase, PhaseSchedule, HIGH_LOAD};
pub use querytypes::{QueryType, ALL_QUERY_TYPES};
pub use scenario::{Routing, Scenario, ScenarioConfig};
