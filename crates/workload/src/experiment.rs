//! The experiment driver: runs the §5.3 workload phase by phase and
//! collects the measurements behind Table 2 and Figures 9–11.

use crate::phases::{apply_phase, Phase, PhaseSchedule};
use crate::querytypes::{QueryType, ALL_QUERY_TYPES};
use crate::scenario::{Routing, Scenario, ScenarioConfig};
use qcc_core::AvailabilityDaemon;
use std::collections::{BTreeMap, BTreeSet};

pub use crate::scenario::Routing as RoutingMode;

/// Aggregated measurements for one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// 1-based phase number.
    pub number: usize,
    /// Mean response time per query type (ms), indexed by
    /// [`QueryType::index`].
    pub per_type_ms: [f64; 4],
    /// The server that served the majority of each type's queries.
    pub per_type_server: [String; 4],
    /// Mean response time over the whole phase workload (ms).
    pub avg_ms: f64,
    /// qcc-obs metrics snapshot taken at the end of the phase (cumulative
    /// across phases; `None` when the scenario was built with obs off).
    pub metrics: Option<String>,
}

/// A full experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The routing mode that produced it.
    pub routing: Routing,
    /// Per-phase aggregates, in schedule order.
    pub phases: Vec<PhaseResult>,
}

impl ExperimentResult {
    /// Per-phase response-time gain of `self` over a baseline:
    /// `1 − avg(self) / avg(baseline)`, in `[−∞, 1)`; positive means
    /// `self` is faster.
    pub fn gain_over(&self, baseline: &ExperimentResult) -> Vec<f64> {
        self.phases
            .iter()
            .zip(&baseline.phases)
            .map(|(a, b)| 1.0 - a.avg_ms / b.avg_ms)
            .collect()
    }

    /// Mean gain across phases.
    pub fn mean_gain_over(&self, baseline: &ExperimentResult) -> f64 {
        let gains = self.gain_over(baseline);
        gains.iter().sum::<f64>() / gains.len().max(1) as f64
    }
}

/// Run the paper's workload (each phase: `instances_per_type` instances of
/// each of the four types, uniformly interleaved) under a routing mode.
///
/// For QCC-driven modes, each phase boundary triggers a re-calibration
/// cycle (§3.4): calibration state resets, the availability daemon probes
/// all sources to seed fresh factors, and `warmup_rounds` unmeasured
/// rounds let the calibrator observe the new regime — mirroring the
/// paper's procedure of measuring after cost observation (§5.1 steps 3–6).
pub fn run_phases(
    routing: Routing,
    config: &ScenarioConfig,
    schedule: &PhaseSchedule,
    instances_per_type: u32,
    warmup_rounds: u32,
) -> ExperimentResult {
    let scenario = Scenario::build_with(routing, config.clone());
    run_phases_on(
        &scenario,
        routing,
        schedule,
        instances_per_type,
        warmup_rounds,
    )
}

/// Like [`run_phases`], over an already-built scenario (ablations build
/// scenarios with custom QCC configurations first).
pub fn run_phases_on(
    scenario: &Scenario,
    routing: Routing,
    schedule: &PhaseSchedule,
    instances_per_type: u32,
    warmup_rounds: u32,
) -> ExperimentResult {
    let daemon = scenario.qcc.as_ref().map(|qcc| {
        AvailabilityDaemon::new(
            std::sync::Arc::clone(qcc),
            scenario.wrappers.clone(),
            scenario.clock.clone(),
        )
    });

    let mut phases = Vec::with_capacity(schedule.phases.len());
    for phase in &schedule.phases {
        phases.push(run_one_phase(
            scenario,
            daemon.as_ref(),
            phase,
            instances_per_type,
            warmup_rounds,
        ));
    }
    ExperimentResult { routing, phases }
}

fn run_one_phase(
    scenario: &Scenario,
    daemon: Option<&AvailabilityDaemon>,
    phase: &Phase,
    instances_per_type: u32,
    warmup_rounds: u32,
) -> PhaseResult {
    apply_phase(scenario, phase);

    if let Some(qcc) = &scenario.qcc {
        // Phase boundary = re-calibration cycle: stale history from the
        // previous load regime is dropped and probes seed fresh factors.
        for server in &scenario.servers {
            qcc.calibration.reset_server(server.id());
        }
        qcc.load_balancer.reset_period();
        if let Some(d) = daemon {
            d.probe_all();
        }
        // Paper §5.1 steps 3–4: "Query fragments ... are forwarded to the
        // *available servers* and the corresponding server response times
        // are observed." Each warm-up round observes every fragment at
        // every candidate server, so the calibration factors cover the
        // whole routing space before measurement begins.
        for round in 0..warmup_rounds {
            // Keep the availability daemon's adaptive cycle alive during
            // warm-up: due probes run at the top of every round, so an
            // outage struck mid-phase is noticed within a probe interval.
            if let Some(d) = daemon {
                d.run_due_probes();
            }
            for qt in ALL_QUERY_TYPES {
                let sql = qt.sql(round);
                let Ok((_, candidates)) = scenario.federation.explain_global(&sql) else {
                    continue;
                };
                // One probe per distinct (server, plan shape).
                let mut observed: BTreeSet<String> = BTreeSet::new();
                let mut probes = Vec::new();
                for cand in &candidates {
                    for fc in &cand.fragments {
                        let key = format!("{}#{}", fc.plan.server, fc.plan.signature);
                        if !observed.insert(key) {
                            continue;
                        }
                        if let Ok(wrapper) = scenario.federation.wrapper(&fc.plan.server) {
                            let wrapper = std::sync::Arc::clone(wrapper);
                            probes.push((fc, wrapper));
                        }
                    }
                }
                // Scatter the probes at one snapshot (they are pure given
                // the timestamp), gather in probe order, record the
                // observations sequentially, and advance the clock once —
                // by the slowest probe.
                let at = scenario.clock.now();
                let threads = scenario.federation.config().threads;
                let results = qcc_common::scatter_indexed(probes.len(), threads, |i| {
                    let (fc, wrapper) = &probes[i];
                    wrapper.execute(&fc.plan, at).ok()
                });
                let mut slowest = qcc_common::SimDuration::ZERO;
                for ((fc, _), result) in probes.iter().zip(results) {
                    let Some(result) = result else { continue };
                    slowest = slowest.max(result.response_time);
                    if let Some(est) = fc.plan.cost {
                        qcc.calibration.record_fragment(
                            &fc.plan.server,
                            &fc.plan.signature,
                            est.total(),
                            result.response_time.as_millis(),
                        );
                    }
                }
                scenario.clock.advance(slowest);
            }
        }
    }

    // Warm the compile-time plan caches for every measured statement, in
    // every mode: plan caching is shared integrator infrastructure, so
    // measured response times compare *routing*, not cold compiles.
    for i in 0..instances_per_type {
        for qt in ALL_QUERY_TYPES {
            let _ = scenario.federation.explain_global(&qt.sql(i));
        }
    }

    let mut sums = [0.0f64; 4];
    let mut counts = [0u32; 4];
    let mut server_votes: [BTreeMap<String, u32>; 4] = Default::default();
    for i in 0..instances_per_type {
        // The daemon also stays live between measured batches — this is
        // where an outage detected by a failed execute gets re-probed (and
        // recovery observed) within the fast probe-interval bound.
        if let Some(d) = daemon {
            d.run_due_probes();
        }
        // One batch per instance round: the four query types arrive
        // together (the paper's concurrent clients), routed against the
        // same frozen adaptive state and executed in parallel workers.
        let sqls: Vec<String> = ALL_QUERY_TYPES.iter().map(|qt| qt.sql(i)).collect();
        let outcomes = scenario.federation.submit_batch(&sqls);
        for (qt, outcome) in ALL_QUERY_TYPES.iter().zip(outcomes) {
            let out = outcome.expect("experiment workload queries succeed");
            let idx = qt.index();
            sums[idx] += out.response_ms;
            counts[idx] += 1;
            if let Some(server) = out.servers.iter().next() {
                *server_votes[idx].entry(server.to_string()).or_insert(0) += 1;
            }
        }
    }

    let per_type_ms = std::array::from_fn(|i| {
        if counts[i] > 0 {
            sums[i] / counts[i] as f64
        } else {
            0.0
        }
    });
    let per_type_server = std::array::from_fn(|i| {
        server_votes[i]
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|(s, _)| s.clone())
            .unwrap_or_default()
    });
    let total: f64 = sums.iter().sum();
    let n: u32 = counts.iter().sum();
    let metrics = if scenario.obs.is_enabled() {
        if let Some(qcc) = &scenario.qcc {
            scenario
                .obs
                .gauge_set("plan_cache_entries", &[], qcc.plan_cache.len() as f64);
        }
        Some(scenario.obs.metrics_snapshot())
    } else {
        None
    };
    PhaseResult {
        number: phase.number,
        per_type_ms,
        per_type_server,
        avg_ms: if n > 0 { total / n as f64 } else { 0.0 },
        metrics,
    }
}

/// One measurement of the Figure 9 sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityPoint {
    /// Query type.
    pub qt: QueryType,
    /// Server measured.
    pub server: String,
    /// Whether the server ran its update workload.
    pub loaded: bool,
    /// Instance index.
    pub instance: u32,
    /// Observed response time (ms) through the wrapper.
    pub response_ms: f64,
}

/// Figure 9: for every query type, measure each server's response time
/// for several instances, under low and high load.
pub fn sensitivity_sweep(config: &ScenarioConfig, instances: u32) -> Vec<SensitivityPoint> {
    use crate::phases::clear_phase;
    use crate::scenario::contention_for;
    use qcc_netsim::LoadProfile;

    let scenario = Scenario::build_with(Routing::Baseline, config.clone());
    let mut points = Vec::new();
    for server in &scenario.servers {
        let wrapper = scenario
            .federation
            .wrapper(server.id())
            .expect("wrapper registered")
            .clone();
        for loaded in [false, true] {
            clear_phase(&scenario);
            if loaded {
                server
                    .load()
                    .set_background(LoadProfile::Constant(crate::phases::HIGH_LOAD));
                server.set_contention(contention_for(server.id()));
            }
            for qt in ALL_QUERY_TYPES {
                for i in 0..instances {
                    let at = scenario.clock.now();
                    let (plans, took) = wrapper.plan(&qt.sql(i), at).expect("healthy server plans");
                    scenario.clock.advance(took);
                    let best = plans.first().expect("at least one plan");
                    let result = wrapper
                        .execute(best, scenario.clock.now())
                        .expect("healthy server executes");
                    scenario.clock.advance(result.response_time);
                    points.push(SensitivityPoint {
                        qt,
                        server: server.id().to_string(),
                        loaded,
                        instance: i,
                        response_ms: result.response_time.as_millis(),
                    });
                }
            }
        }
    }
    clear_phase(&scenario);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioConfig {
        ScenarioConfig::tiny()
    }

    #[test]
    fn sensitivity_sweep_shows_load_effect() {
        let points = sensitivity_sweep(&tiny(), 2);
        // 3 servers × 2 load states × 4 types × 2 instances.
        assert_eq!(points.len(), 48);
        // For every (server, type): loaded ≥ unloaded.
        for qt in ALL_QUERY_TYPES {
            for server in ["S1", "S2", "S3"] {
                let avg = |loaded: bool| {
                    let xs: Vec<f64> = points
                        .iter()
                        .filter(|p| p.qt == qt && p.server == server && p.loaded == loaded)
                        .map(|p| p.response_ms)
                        .collect();
                    xs.iter().sum::<f64>() / xs.len() as f64
                };
                assert!(
                    avg(true) >= avg(false),
                    "{qt}@{server}: load must not speed things up"
                );
            }
        }
    }

    #[test]
    fn qt2_s3_is_most_load_sensitive() {
        let points = sensitivity_sweep(&tiny(), 2);
        let ratio = |server: &str, qt: QueryType| {
            let avg = |loaded: bool| {
                let xs: Vec<f64> = points
                    .iter()
                    .filter(|p| p.qt == qt && p.server == server && p.loaded == loaded)
                    .map(|p| p.response_ms)
                    .collect();
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            avg(true) / avg(false)
        };
        // §5.2: "for one of the costlier query types (QT2), S3 is much
        // more sensitive to load than the others".
        assert!(ratio("S3", QueryType::QT2) > ratio("S1", QueryType::QT2));
        assert!(ratio("S3", QueryType::QT2) > ratio("S2", QueryType::QT2));
        // While for QT1, S3 is barely load sensitive.
        assert!(ratio("S3", QueryType::QT1) < ratio("S1", QueryType::QT1));
    }

    #[test]
    fn short_experiment_runs_all_routings() {
        let schedule = PhaseSchedule {
            phases: PhaseSchedule::paper_table1().phases[..2].to_vec(),
        };
        for routing in [Routing::Fixed1, Routing::Fixed2, Routing::Qcc] {
            let r = run_phases(routing, &tiny(), &schedule, 2, 1);
            assert_eq!(r.phases.len(), 2);
            for p in &r.phases {
                assert!(p.avg_ms > 0.0);
            }
        }
    }

    #[test]
    fn qcc_beats_fixed1_when_s3_available() {
        // Phase 1 (no load): QCC should route to the fast server and beat
        // the registration-time assignment.
        let schedule = PhaseSchedule {
            phases: PhaseSchedule::paper_table1().phases[..1].to_vec(),
        };
        let fixed = run_phases(Routing::Fixed1, &tiny(), &schedule, 3, 1);
        let qcc = run_phases(Routing::Qcc, &tiny(), &schedule, 3, 1);
        assert!(
            qcc.phases[0].avg_ms < fixed.phases[0].avg_ms,
            "qcc {} vs fixed {}",
            qcc.phases[0].avg_ms,
            fixed.phases[0].avg_ms
        );
        let gain = qcc.gain_over(&fixed)[0];
        assert!(gain > 0.1, "gain {gain}");
    }

    #[test]
    fn qcc_avoids_loaded_s3_for_qt2() {
        // Phase 2: S3 loaded. QCC should route QT2 away from S3.
        let schedule = PhaseSchedule {
            phases: vec![PhaseSchedule::paper_table1().phases[1].clone()],
        };
        let qcc = run_phases(Routing::Qcc, &tiny(), &schedule, 3, 2);
        let server = &qcc.phases[0].per_type_server[QueryType::QT2.index()];
        assert_ne!(server, "S3", "QT2 re-routed away from loaded S3");
        // QT1 stays on S3 even though S3 is loaded.
        assert_eq!(qcc.phases[0].per_type_server[QueryType::QT1.index()], "S3");
    }
}
