//! The middleware seam between the integrator and the wrappers.
//!
//! In the paper's architecture (Figure 2), the meta-wrapper (MW) sits
//! between II and the wrappers: it forwards EXPLAIN and EXECUTE requests,
//! records statements / estimated costs / fragment-to-server mappings /
//! response times, and — together with the QCC — *calibrates* the costs it
//! passes back so the II optimizer makes load- and network-aware choices
//! without being modified.
//!
//! The [`Middleware`] trait is that seam. [`PassthroughMiddleware`] is the
//! baseline II behaviour (no recording, no calibration); the QCC crate
//! provides the calibrating implementation.

use qcc_common::{Cost, FragmentId, QueryId, Result, ServerId, SimDuration, SimTime};
use qcc_wrapper::{FragmentPlan, Wrapper, WrapperResult, WrapperStream};
use std::collections::BTreeSet;
use std::fmt;

/// Deferred shared-state writes gathered during a scatter unit.
///
/// Middleware calls made from scatter workers must not mutate shared
/// state directly — at one thread the scatter runs inline (earlier tasks'
/// writes would be visible to later tasks), at eight threads it
/// interleaves, and the results would differ. Instead, every side effect
/// (statistics records, calibration samples, plan-cache inserts, load
/// balancer commits) is pushed into a `Deferred` buffer; the coordinator
/// applies the buffers **at the gather barrier, in task-index order**, so
/// the sequence of shared-state mutations is identical for any thread
/// count. See DESIGN.md "Threading model".
#[derive(Default)]
pub struct Deferred {
    effects: Vec<Box<dyn FnOnce() + Send>>,
}

impl Deferred {
    /// Empty buffer.
    pub fn new() -> Self {
        Deferred::default()
    }

    /// Queue one side effect to run at the gather barrier.
    pub fn defer(&mut self, effect: impl FnOnce() + Send + 'static) {
        self.effects.push(Box::new(effect));
    }

    /// Append another buffer's effects after this one's (coordinator use:
    /// merge per-task buffers in task-index order).
    pub fn merge(&mut self, mut other: Deferred) {
        self.effects.append(&mut other.effects);
    }

    /// Run every queued effect, in the order queued.
    pub fn apply(self) {
        for effect in self.effects {
            effect();
        }
    }

    /// Number of queued effects.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}

impl fmt::Debug for Deferred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deferred")
            .field("effects", &self.effects.len())
            .finish()
    }
}

/// Cost assigned to fragment plans whose wrapper reports none (file
/// wrappers). The value is deliberately arbitrary — the paper's point is
/// that only calibration can make such sources comparable.
pub const DEFAULT_UNCOSTED: f64 = 10.0;

/// One candidate execution of one fragment: a server, a concrete plan, and
/// the (possibly calibrated) cost the optimizer will use.
#[derive(Debug, Clone)]
pub struct FragmentCandidate {
    /// Which fragment of the decomposed query this is.
    pub fragment: FragmentId,
    /// The wrapper-provided plan.
    pub plan: FragmentPlan,
    /// The cost used for global optimization (calibrated when a QCC is
    /// attached; otherwise the wrapper's raw estimate).
    pub effective_cost: Cost,
}

/// A fully specified global plan: one candidate per fragment plus the
/// estimated integration cost at the II.
#[derive(Debug, Clone)]
pub struct GlobalCandidate {
    /// Chosen candidate per fragment, in fragment order.
    pub fragments: Vec<FragmentCandidate>,
    /// Estimated (calibrated) cost of merging at the integrator.
    pub integration_cost: Cost,
}

impl GlobalCandidate {
    /// Total estimated cost. Remote fragments run in parallel, so the
    /// remote contribution is the slowest fragment; integration follows.
    pub fn total_cost(&self) -> f64 {
        let remote = self
            .fragments
            .iter()
            .map(|f| f.effective_cost.total())
            .fold(0.0_f64, f64::max);
        remote + self.integration_cost.total()
    }

    /// The set of servers this plan touches.
    pub fn server_set(&self) -> BTreeSet<ServerId> {
        self.fragments
            .iter()
            .map(|f| f.plan.server.clone())
            .collect()
    }

    /// A canonical signature of the plan: per-fragment server + plan shape.
    pub fn signature(&self) -> String {
        let parts: Vec<String> = self
            .fragments
            .iter()
            .map(|f| format!("{}@{}", f.plan.signature, f.plan.server))
            .collect();
        parts.join("|")
    }
}

/// The seam between II and the wrappers.
///
/// Every method that mutates middleware state takes an `effects` buffer:
/// implementations must read shared state freely but push all *writes*
/// into `effects` (see [`Deferred`]). Callers apply the buffers at their
/// gather barriers in deterministic order. Single-threaded callers pass a
/// buffer and apply it immediately — the observable behaviour is the same.
pub trait Middleware: Send + Sync {
    /// Compile time: forward an EXPLAIN to a wrapper. Implementations may
    /// record the request and calibrate the returned costs.
    fn plan_fragment(
        &self,
        wrapper: &dyn Wrapper,
        query: QueryId,
        fragment: FragmentId,
        sql: &str,
        at: SimTime,
        effects: &mut Deferred,
    ) -> Result<(Vec<FragmentCandidate>, SimDuration)>;

    /// Runtime: forward an EXECUTE to a wrapper. Implementations record
    /// the observed response time (and errors, for the reliability factor).
    fn execute_fragment(
        &self,
        wrapper: &dyn Wrapper,
        query: QueryId,
        fragment: FragmentId,
        plan: &FragmentPlan,
        at: SimTime,
        effects: &mut Deferred,
    ) -> Result<WrapperResult>;

    /// Runtime: forward a resumable streamed EXECUTE to a wrapper (the
    /// cursor protocol; see `Wrapper::execute_stream`). Unlike
    /// [`Middleware::execute_fragment`], implementations must NOT record
    /// success-side observations here: a stream the coordinator later
    /// cancels must not feed its truncated response time into
    /// calibration. The coordinator reports accepted completions through
    /// [`Middleware::observe_fragment`] and mid-flight cancellations
    /// through [`Middleware::observe_fragment_cancel`]. Failures
    /// (including mid-stream interrupts) are still recorded here, at the
    /// time the integrator observes them.
    fn execute_fragment_stream(
        &self,
        wrapper: &dyn Wrapper,
        _query: QueryId,
        _fragment: FragmentId,
        plan: &FragmentPlan,
        at: SimTime,
        cursor: usize,
        _effects: &mut Deferred,
    ) -> Result<WrapperStream> {
        wrapper.execute_stream(plan, at, cursor, true)
    }

    /// Coordinator acknowledgement that a streamed fragment ran to
    /// completion and its result was accepted into the merge. Feeds the
    /// reliability and calibration windows exactly as a call-and-wait
    /// success would. No-op by default.
    fn observe_fragment(
        &self,
        _query: QueryId,
        _fragment: FragmentId,
        _plan: &FragmentPlan,
        _observed_ms: f64,
        _at: SimTime,
        _effects: &mut Deferred,
    ) {
    }

    /// Coordinator notice that a streamed fragment was cancelled
    /// mid-flight (stall detector fired). Implementations may penalize
    /// the server's reliability factor; they must NOT feed the truncated
    /// response time into calibration. No-op by default.
    fn observe_fragment_cancel(
        &self,
        _query: QueryId,
        _fragment: FragmentId,
        _server: &ServerId,
        _at: SimTime,
        _effects: &mut Deferred,
    ) {
    }

    /// Calibrate the integrator-side merge cost (the paper's workload cost
    /// calibration factor, §3.2). Identity by default. Read-only.
    fn calibrate_integration(&self, cost: Cost) -> Cost {
        cost
    }

    /// Choose among the enumerated global candidates for a query. The
    /// default picks the lowest total cost — classic cost-based II. A QCC
    /// may instead rotate among near-equal plans for load distribution
    /// (§4.2). `query_sig` identifies the *query template* so rotation
    /// state survives across repeated similar queries; frequency/cursor
    /// updates go through `effects`.
    fn choose_global(
        &self,
        _query_sig: &str,
        candidates: &[GlobalCandidate],
        _effects: &mut Deferred,
    ) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cost().total_cmp(&b.total_cost()))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Record the end-to-end outcome of a federated query (submit-to-merge
    /// response time vs. the chosen plan's estimate). Feeds the II workload
    /// calibration factor. No-op by default.
    fn observe_query(
        &self,
        _query: QueryId,
        _query_sig: &str,
        _estimated_total: f64,
        _observed_ms: f64,
        _effects: &mut Deferred,
    ) {
    }
}

/// Baseline middleware: forwards requests untouched. This is the paper's
/// "prototype version of DB2 Information Integrator" without QCC.
///
/// An optional [`crate::PlanCache`] makes repeated fragments skip the
/// EXPLAIN round trip — plan caching is integrator infrastructure shared
/// by every routing configuration, so comparisons against calibrated
/// middlewares isolate *routing* effects (see `qcc-workload`).
#[derive(Debug, Default, Clone)]
pub struct PassthroughMiddleware {
    cache: Option<std::sync::Arc<crate::PlanCache>>,
}

impl PassthroughMiddleware {
    /// Baseline with a plan cache attached.
    pub fn with_cache() -> Self {
        PassthroughMiddleware {
            cache: Some(std::sync::Arc::new(crate::PlanCache::new())),
        }
    }
}

impl Middleware for PassthroughMiddleware {
    fn plan_fragment(
        &self,
        wrapper: &dyn Wrapper,
        _query: QueryId,
        fragment: FragmentId,
        sql: &str,
        at: SimTime,
        effects: &mut Deferred,
    ) -> Result<(Vec<FragmentCandidate>, SimDuration)> {
        let server = wrapper.server_id();
        let cached = self.cache.as_deref().and_then(|c| c.get(server, sql));
        let (plans, took) = match cached {
            Some(plans) => (plans, SimDuration::ZERO),
            None => {
                let (plans, took) = wrapper.plan(sql, at)?;
                let plans = std::sync::Arc::new(plans);
                if let Some(c) = self.cache.clone() {
                    let (server, sql, plans) = (server.clone(), sql.to_owned(), plans.clone());
                    effects.defer(move || c.put_shared(&server, &sql, plans));
                }
                (plans, took)
            }
        };
        Ok((
            plans
                .iter()
                .cloned()
                .map(|plan| FragmentCandidate {
                    fragment,
                    effective_cost: plan.cost.unwrap_or(Cost::fixed(DEFAULT_UNCOSTED)),
                    plan,
                })
                .collect(),
            took,
        ))
    }

    fn execute_fragment(
        &self,
        wrapper: &dyn Wrapper,
        _query: QueryId,
        _fragment: FragmentId,
        plan: &FragmentPlan,
        at: SimTime,
        _effects: &mut Deferred,
    ) -> Result<WrapperResult> {
        wrapper.execute(plan, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(server: &str, cost: f64, sig: &str) -> FragmentCandidate {
        FragmentCandidate {
            fragment: FragmentId::new(QueryId(0), 0),
            plan: FragmentPlan {
                server: ServerId::new(server),
                sql: "SELECT 1".into(),
                descriptor: None,
                cost: Some(Cost::fixed(cost)),
                signature: sig.into(),
            },
            effective_cost: Cost::fixed(cost),
        }
    }

    #[test]
    fn total_cost_takes_slowest_fragment_plus_integration() {
        let g = GlobalCandidate {
            fragments: vec![candidate("S1", 10.0, "a"), candidate("S2", 30.0, "b")],
            integration_cost: Cost::fixed(5.0),
        };
        assert_eq!(g.total_cost(), 35.0);
    }

    #[test]
    fn server_set_dedups() {
        let g = GlobalCandidate {
            fragments: vec![candidate("S1", 1.0, "a"), candidate("S1", 2.0, "b")],
            integration_cost: Cost::ZERO,
        };
        assert_eq!(g.server_set().len(), 1);
    }

    #[test]
    fn default_choice_is_cheapest() {
        let mk = |c: f64| GlobalCandidate {
            fragments: vec![candidate("S1", c, "a")],
            integration_cost: Cost::ZERO,
        };
        let cands = vec![mk(10.0), mk(3.0), mk(7.0)];
        let mw = PassthroughMiddleware::default();
        assert_eq!(mw.choose_global("q", &cands, &mut Deferred::new()), 1);
    }

    #[test]
    fn deferred_applies_in_queue_order() {
        use parking_lot::Mutex;
        use std::sync::Arc;
        let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut a = Deferred::new();
        let mut b = Deferred::new();
        for (buf, v) in [(&mut a, 1), (&mut b, 2)] {
            let seen = seen.clone();
            buf.defer(move || seen.lock().push(v));
        }
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        a.merge(b);
        assert_eq!(a.len(), 2);
        a.apply();
        assert_eq!(*seen.lock(), vec![1, 2]);
    }

    #[test]
    fn signature_includes_server_and_shape() {
        let g = GlobalCandidate {
            fragments: vec![candidate("S1", 1.0, "seqscan(t)")],
            integration_cost: Cost::ZERO,
        };
        assert_eq!(g.signature(), "seqscan(t)@S1");
    }
}
