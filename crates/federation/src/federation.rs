//! The integrator's orchestration: compile, globally optimize, execute
//! remotely, merge locally.

use crate::decompose::{decompose, frag_table, DecomposedQuery, MergeSpec};
use crate::middleware::{FragmentCandidate, GlobalCandidate, Middleware};
use crate::nickname::NicknameCatalog;
use crate::patroller::QueryPatroller;
use parking_lot::Mutex;
use qcc_common::{Cost, FragmentId, QccError, QueryId, Result, Row, ServerId, SimDuration};
use qcc_engine::Engine;
use qcc_netsim::{slowdown, LoadProfile, ServerLoad, SimClock};
use qcc_storage::{Catalog, ColumnStats, Table, TableStats};
use qcc_wrapper::Wrapper;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Integrator configuration.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Integrator CPU speed (work units per virtual ms).
    pub ii_speed: f64,
    /// Cap on enumerated global plan candidates per query.
    pub max_global_candidates: usize,
    /// How many times a query is re-routed after a fragment failure before
    /// giving up.
    pub retry_limit: usize,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            ii_speed: 1.0,
            max_global_candidates: 64,
            retry_limit: 2,
        }
    }
}

/// The outcome of a federated query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Patroller-assigned id.
    pub id: QueryId,
    /// Result rows.
    pub rows: Vec<Row>,
    /// End-to-end response time in virtual ms (submit → merged result).
    pub response_ms: f64,
    /// Signature of the executed global plan.
    pub chosen_signature: String,
    /// Servers the executed plan touched.
    pub servers: BTreeSet<ServerId>,
    /// Observed per-fragment response times `(server, ms)`.
    pub fragment_times: Vec<(ServerId, f64)>,
    /// The estimated total cost of the chosen plan (for calibration
    /// inspection in tests and experiments).
    pub estimated_cost: f64,
}

/// A compiled federated query: its decomposition plus the enumerated
/// global candidates, costed and sorted cheapest-first.
pub type CompiledGlobal = (DecomposedQuery, Vec<GlobalCandidate>);

/// Observed `(server, response ms)` pairs, one per executed fragment.
pub type FragmentTimes = Vec<(ServerId, f64)>;

/// The federated information integrator.
pub struct Federation {
    nicknames: NicknameCatalog,
    wrappers: BTreeMap<ServerId, Arc<dyn Wrapper>>,
    middleware: Arc<dyn Middleware>,
    patroller: QueryPatroller,
    clock: SimClock,
    ii_load: ServerLoad,
    config: FederationConfig,
    /// The explain table: query template → winning global plan signature
    /// (the paper stores the selected plan and its estimated costs here).
    explain_table: Mutex<BTreeMap<String, String>>,
}

impl Federation {
    /// Build an integrator.
    pub fn new(
        nicknames: NicknameCatalog,
        clock: SimClock,
        middleware: Arc<dyn Middleware>,
        config: FederationConfig,
    ) -> Self {
        Federation {
            nicknames,
            wrappers: BTreeMap::new(),
            middleware,
            patroller: QueryPatroller::new(),
            clock,
            ii_load: ServerLoad::new(LoadProfile::Constant(0.0), 0.02),
            config,
            explain_table: Mutex::new(BTreeMap::new()),
        }
    }

    /// Register a wrapper for a server.
    pub fn add_wrapper(&mut self, wrapper: Arc<dyn Wrapper>) {
        self.wrappers.insert(wrapper.server_id().clone(), wrapper);
    }

    /// The nickname catalog.
    pub fn nicknames(&self) -> &NicknameCatalog {
        &self.nicknames
    }

    /// The query patroller (its log is the QCC's runtime feed).
    pub fn patroller(&self) -> &QueryPatroller {
        &self.patroller
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The integrator's own load model (§3.2: II load affects merge cost).
    pub fn ii_load(&self) -> &ServerLoad {
        &self.ii_load
    }

    /// The wrapper registered for `server`.
    pub fn wrapper(&self, server: &ServerId) -> Result<&Arc<dyn Wrapper>> {
        self.wrappers
            .get(server)
            .ok_or_else(|| QccError::Config(format!("no wrapper for server {server}")))
    }

    /// Snapshot of the explain table (template → winning plan signature).
    pub fn explain_table(&self) -> BTreeMap<String, String> {
        self.explain_table.lock().clone()
    }

    /// Compile a query: decompose and enumerate global candidates with
    /// (possibly calibrated) costs. Advances the clock by the EXPLAIN
    /// round trips. Does not execute.
    pub fn explain_global(&self, sql: &str) -> Result<CompiledGlobal> {
        let qid = QueryId(u64::MAX); // sentinel: not a logged submission
        self.compile(qid, sql)
    }

    fn compile(&self, qid: QueryId, sql: &str) -> Result<CompiledGlobal> {
        let decomposed = decompose(sql, &self.nicknames)?;

        // Per fragment: all candidate (server, plan) pairs.
        let mut per_fragment: Vec<Vec<FragmentCandidate>> = Vec::new();
        for frag in &decomposed.fragments {
            let fid = FragmentId::new(qid, frag.index);
            let mut candidates = Vec::new();
            for server in &frag.candidate_servers {
                let Ok(wrapper) = self.wrapper(server) else {
                    continue;
                };
                let frag_sql = frag.sql_for_server(&self.nicknames, server)?;
                let at = self.clock.now();
                match self
                    .middleware
                    .plan_fragment(wrapper.as_ref(), qid, fid, &frag_sql, at)
                {
                    Ok((plans, took)) => {
                        self.clock.advance(took);
                        candidates.extend(plans);
                    }
                    Err(QccError::ServerUnavailable(_)) | Err(QccError::ServerFault { .. }) => {
                        // A down server contributes no candidates; the MW
                        // has recorded the failure.
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            if candidates.is_empty() {
                return Err(QccError::NoViablePlan(format!(
                    "no server could plan fragment {} ({})",
                    frag.index, frag.stmt
                )));
            }
            // Drop candidates the calibrator pinned to infinity (downed
            // servers), unless nothing else remains.
            let finite: Vec<FragmentCandidate> = candidates
                .iter()
                .filter(|c| !c.effective_cost.is_infinite())
                .cloned()
                .collect();
            if !finite.is_empty() {
                candidates = finite;
            }
            // Keep the cheapest plans first so candidate capping keeps the
            // most promising combinations.
            candidates.sort_by(|a, b| {
                a.effective_cost
                    .total()
                    .total_cmp(&b.effective_cost.total())
            });
            per_fragment.push(candidates);
        }

        // Cartesian product, capped.
        let mut combos: Vec<Vec<FragmentCandidate>> = vec![vec![]];
        for frag_cands in &per_fragment {
            let mut next = Vec::new();
            'outer: for combo in &combos {
                for cand in frag_cands {
                    if next.len() >= self.config.max_global_candidates {
                        break 'outer;
                    }
                    let mut c = combo.clone();
                    c.push(cand.clone());
                    next.push(c);
                }
            }
            combos = next;
        }

        let mut candidates: Vec<GlobalCandidate> = combos
            .into_iter()
            .map(|fragments| {
                let integration = self.estimate_integration(&decomposed, &fragments);
                GlobalCandidate {
                    integration_cost: self.middleware.calibrate_integration(integration),
                    fragments,
                }
            })
            .collect();
        candidates.sort_by(|a, b| a.total_cost().total_cmp(&b.total_cost()));
        Ok((decomposed, candidates))
    }

    /// Estimated merge cost at the integrator for one fragment-candidate
    /// combination, using a virtual catalog whose table statistics come
    /// from the fragments' estimated cardinalities.
    fn estimate_integration(
        &self,
        decomposed: &DecomposedQuery,
        fragments: &[FragmentCandidate],
    ) -> Cost {
        let MergeSpec::Merge { stmt } = &decomposed.merge else {
            return Cost::ZERO;
        };
        let mut catalog = Catalog::new();
        for (i, frag) in decomposed.fragments.iter().enumerate() {
            let schema = frag.output_schema();
            let card = fragments
                .get(i)
                .map(|f| f.effective_cost.cardinality)
                .unwrap_or(1.0)
                .max(1.0) as u64;
            let columns = schema
                .columns()
                .iter()
                .map(|_| ColumnStats {
                    distinct: (card / 2).max(1),
                    null_count: 0,
                    histogram: None,
                })
                .collect();
            let stats = TableStats::virtual_table(card, 8.0 * schema.len() as f64, columns);
            catalog.register_virtual(Table::new(frag_table(i), schema), stats);
        }
        let engine = Engine::new(catalog);
        match engine.explain(&stmt.to_string()) {
            Ok(plans) if !plans.is_empty() => plans[0].cost.calibrate(1.0 / self.config.ii_speed),
            _ => Cost::fixed(1.0),
        }
    }

    /// Submit a federated query: compile, choose a global plan, execute
    /// the fragments remotely (in parallel), merge locally, and log it all.
    pub fn submit(&self, sql: &str) -> Result<QueryOutcome> {
        let submitted = self.clock.now();
        let qid = self.patroller.record_submit(sql, submitted);
        match self.run(qid, sql) {
            Ok(outcome) => {
                self.patroller.record_complete(qid, self.clock.now());
                Ok(outcome)
            }
            Err(e) => {
                self.patroller
                    .record_failure(qid, self.clock.now(), e.to_string());
                Err(e)
            }
        }
    }

    fn run(&self, qid: QueryId, sql: &str) -> Result<QueryOutcome> {
        let submitted = self.clock.now();
        let (decomposed, mut candidates) = self.compile(qid, sql)?;
        if candidates.is_empty() {
            return Err(QccError::NoViablePlan("no global candidates".into()));
        }
        let mut banned: BTreeSet<ServerId> = BTreeSet::new();

        for _attempt in 0..=self.config.retry_limit {
            // Filter candidates avoiding servers that already failed.
            let viable: Vec<&GlobalCandidate> = candidates
                .iter()
                .filter(|c| c.server_set().is_disjoint(&banned))
                .collect();
            if viable.is_empty() {
                break;
            }
            let viable_owned: Vec<GlobalCandidate> = viable.into_iter().cloned().collect();
            let idx = self
                .middleware
                .choose_global(&decomposed.template_signature, &viable_owned)
                .min(viable_owned.len() - 1);
            let chosen = &viable_owned[idx];
            self.explain_table
                .lock()
                .insert(decomposed.template_signature.clone(), chosen.signature());

            match self.execute_global(qid, &decomposed, chosen) {
                Ok((rows, fragment_times)) => {
                    let response_ms = self.clock.now().since(submitted).as_millis();
                    self.middleware.observe_query(
                        qid,
                        &decomposed.template_signature,
                        chosen.total_cost(),
                        response_ms,
                    );
                    return Ok(QueryOutcome {
                        id: qid,
                        rows,
                        response_ms,
                        chosen_signature: chosen.signature(),
                        servers: chosen.server_set(),
                        fragment_times,
                        estimated_cost: chosen.total_cost(),
                    });
                }
                Err(QccError::ServerUnavailable(s))
                | Err(QccError::ServerFault { server: s, .. }) => {
                    // Ban the failed server and re-route. The middleware
                    // has already recorded the failure (reliability input).
                    banned.insert(s);
                    candidates.retain(|c| c.server_set().is_disjoint(&banned));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(QccError::NoViablePlan(format!(
            "all retries exhausted; unavailable servers: {banned:?}"
        )))
    }

    /// Execute the fragments of a chosen global plan (logically in
    /// parallel: the clock advances by the slowest fragment) and merge.
    fn execute_global(
        &self,
        qid: QueryId,
        decomposed: &DecomposedQuery,
        chosen: &GlobalCandidate,
    ) -> Result<(Vec<Row>, FragmentTimes)> {
        let start = self.clock.now();
        let mut results = Vec::with_capacity(chosen.fragments.len());
        let mut slowest = SimDuration::ZERO;
        let mut fragment_times = Vec::new();
        for cand in &chosen.fragments {
            let wrapper = self.wrapper(&cand.plan.server)?;
            let result = self.middleware.execute_fragment(
                wrapper.as_ref(),
                qid,
                cand.fragment,
                &cand.plan,
                start,
            )?;
            slowest = slowest.max(result.response_time);
            fragment_times.push((cand.plan.server.clone(), result.response_time.as_millis()));
            results.push(result);
        }
        self.clock.advance(slowest);

        match &decomposed.merge {
            MergeSpec::Passthrough => {
                let rows = results
                    .into_iter()
                    .next()
                    .map(|r| r.rows)
                    .unwrap_or_default();
                Ok((rows, fragment_times))
            }
            MergeSpec::Merge { stmt } => {
                // Register the shipped fragment results as temp tables and
                // run the merge with the real engine.
                let mut catalog = Catalog::new();
                for (i, (frag, result)) in decomposed.fragments.iter().zip(results).enumerate() {
                    let mut table = Table::new(frag_table(i), frag.output_schema());
                    table.insert_all(result.rows).map_err(|e| {
                        QccError::Execution(format!("fragment {i} result mismatch: {e}"))
                    })?;
                    catalog.register(table);
                }
                let engine = Engine::new(catalog);
                let (rows, work) = engine.execute_sql(&stmt.to_string())?;
                let rho = self.ii_load.utilization(self.clock.now());
                let merge_ms = work.cpu_units / self.config.ii_speed * slowdown(rho, 1.0);
                self.clock.advance(SimDuration::from_millis(merge_ms));
                Ok((rows, fragment_times))
            }
        }
    }
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("nicknames", &self.nicknames.names())
            .field("wrappers", &self.wrappers.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::PassthroughMiddleware;
    use qcc_common::{Column, DataType, Schema, SimTime, Value};
    use qcc_netsim::{Link, Network};
    use qcc_remote::{RemoteServer, ServerProfile};
    use qcc_wrapper::RelationalWrapper;

    /// Two servers: S1 hosts accounts+branches, S2 hosts a replica of
    /// branches only.
    fn setup() -> Federation {
        let accounts_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("balance", DataType::Float),
            Column::new("branch_id", DataType::Int),
        ]);
        let branches_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Str),
        ]);

        let mut accounts = Table::new("accounts", accounts_schema.clone());
        for i in 0..500i64 {
            accounts
                .insert(Row::new(vec![
                    Value::Int(i),
                    Value::Float((i % 100) as f64),
                    Value::Int(i % 10),
                ]))
                .unwrap();
        }
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..10i64 {
            branches
                .insert(Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("city{i}")),
                ]))
                .unwrap();
        }

        let mut cat1 = Catalog::new();
        cat1.register(accounts.clone());
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches.clone());

        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);

        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);

        let mut nicknames = NicknameCatalog::new();
        nicknames.define("accounts", accounts_schema);
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();

        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));
        fed
    }

    #[test]
    fn single_source_query_round_trips() {
        let fed = setup();
        let out = fed
            .submit("SELECT COUNT(*) FROM accounts WHERE balance > 50.0")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(0), &Value::Int(245));
        assert!(out.response_ms > 0.0);
        assert_eq!(fed.patroller().len(), 1);
    }

    #[test]
    fn colocated_join_pushes_to_s1() {
        let fed = setup();
        let out = fed
            .submit(
                "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
                 ON a.branch_id = b.id GROUP BY b.city ORDER BY b.city",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 10);
        assert_eq!(out.rows[0].get(1), &Value::Int(50));
        assert!(out.servers.contains(&ServerId::new("S1")));
        assert_eq!(out.servers.len(), 1, "join pushed to the coherent host");
    }

    #[test]
    fn replica_choice_exists_for_replicated_nickname() {
        let fed = setup();
        let (_, candidates) = fed.explain_global("SELECT COUNT(*) FROM branches").unwrap();
        let servers: BTreeSet<String> = candidates
            .iter()
            .map(|c| c.server_set().iter().next().unwrap().to_string())
            .collect();
        assert!(servers.contains("S1") && servers.contains("S2"));
    }

    #[test]
    fn explain_table_records_winner() {
        let fed = setup();
        fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(fed.explain_table().len(), 1);
    }

    #[test]
    fn failure_reroutes_to_replica() {
        // Build a setup where we keep direct handles to the servers.
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..10i64 {
            branches.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(&s1),
            Arc::clone(&net),
        )));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));

        // S1 goes down *after compile time* is hard to time here; instead
        // take it down for the whole run — compile skips it, S2 serves.
        s1.availability()
            .add_outage(SimTime::ZERO, SimTime::from_millis(1e12));
        let out = fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(out.rows[0].get(0), &Value::Int(10));
        assert!(out.servers.contains(&ServerId::new("S2")));
    }

    #[test]
    fn no_viable_plan_when_all_sources_down() {
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut cat = Catalog::new();
        cat.register(Table::new("branches", branches_schema.clone()));
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat);
        s1.availability()
            .add_outage(SimTime::ZERO, SimTime::from_millis(1e12));
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::new(net))));
        let err = fed.submit("SELECT COUNT(*) FROM branches").unwrap_err();
        assert!(matches!(err, QccError::NoViablePlan(_)), "{err}");
        assert_eq!(
            fed.patroller().log()[0].status,
            crate::patroller::QueryStatus::Failed(err.to_string())
        );
    }

    #[test]
    fn clock_advances_with_execution() {
        let fed = setup();
        let before = fed.clock().now();
        fed.submit("SELECT * FROM accounts WHERE id < 100").unwrap();
        assert!(fed.clock().now() > before);
    }

    #[test]
    fn cross_source_merge_join_correct() {
        // Force a split: accounts only on S1, branches only on S2.
        let accounts_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("branch_id", DataType::Int),
        ]);
        let branches_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Str),
        ]);
        let mut accounts = Table::new("accounts", accounts_schema.clone());
        for i in 0..100i64 {
            accounts
                .insert(Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..5i64 {
            branches
                .insert(Row::new(vec![Value::Int(i), Value::Str(format!("c{i}"))]))
                .unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(accounts);
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("accounts", accounts_schema);
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));

        let out = fed
            .submit(
                "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
                 ON a.branch_id = b.id GROUP BY b.city ORDER BY b.city",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 5);
        for r in &out.rows {
            assert_eq!(r.get(1), &Value::Int(20));
        }
        assert_eq!(out.servers.len(), 2, "both sources touched");
        assert_eq!(out.fragment_times.len(), 2);
    }
}
