//! The integrator's orchestration: compile, globally optimize, execute
//! remotely, merge locally.

use crate::decompose::{decompose, frag_table, DecomposedQuery, MergeSpec};
use crate::middleware::{Deferred, FragmentCandidate, GlobalCandidate, Middleware};
use crate::nickname::NicknameCatalog;
use crate::patroller::QueryPatroller;
use parking_lot::Mutex;
use qcc_admission::AdmissionController;
use qcc_catalog::ReplicaCatalog;
use qcc_common::{
    scatter_indexed, Cost, FragmentId, Obs, QccError, QueryId, Result, Row, ServerId, SimDuration,
    SimTime,
};
use qcc_engine::Engine;
use qcc_netsim::{slowdown, LoadProfile, ServerLoad, SimClock};
use qcc_storage::{Catalog, ColumnStats, Table, TableStats};
use qcc_wrapper::{StreamChunk, StreamOutcome, Wrapper, WrapperResult, WrapperStream};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Integrator configuration.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Integrator CPU speed (work units per virtual ms).
    pub ii_speed: f64,
    /// Cap on enumerated global plan candidates per query.
    pub max_global_candidates: usize,
    /// How many times a query is re-routed after a fragment failure before
    /// giving up.
    pub retry_limit: usize,
    /// Worker-pool width for scatter-gather fan-out (compile-time EXPLAIN
    /// dispatch, fragment execution, `submit_batch`). Results are
    /// byte-identical for any value ≥ 1; this only trades wall-clock time
    /// (see DESIGN.md "Threading model").
    pub threads: usize,
    /// Mid-query adaptivity switch (DESIGN.md §15). `0.0` — the default
    /// sentinel — disables it entirely: fragments execute call-and-wait
    /// exactly as before, byte-identical journals included. Any positive
    /// value enables streamed fragment execution with a stall detector:
    /// a fragment still incomplete after `stall_factor ×` its calibrated
    /// estimate (or whose source dies mid-stream) is cancelled and its
    /// *remainder* re-dispatched to a within-band replica at the cursor.
    pub stall_factor: f64,
    /// Virtual-time lag between a mid-stream interrupt and the stall
    /// detector noticing it (one probe interval).
    pub reroute_probe_ms: f64,
    /// How many remainder re-dispatches one fragment may attempt before
    /// the failure surfaces to the whole-query retry loop.
    pub reroute_limit: usize,
    /// Replica selection band: a remainder only re-dispatches to an
    /// alternate whose calibrated cost is within `reroute_band ×` the
    /// cancelled primary's estimate.
    pub reroute_band: f64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            ii_speed: 1.0,
            max_global_candidates: 64,
            retry_limit: 2,
            threads: qcc_common::default_threads(),
            stall_factor: 0.0,
            reroute_probe_ms: 1.0,
            reroute_limit: 1,
            reroute_band: 2.0,
        }
    }
}

/// The outcome of a federated query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Patroller-assigned id.
    pub id: QueryId,
    /// Result rows.
    pub rows: Vec<Row>,
    /// End-to-end response time in virtual ms (submit → merged result).
    pub response_ms: f64,
    /// Signature of the executed global plan.
    pub chosen_signature: String,
    /// Servers the executed plan touched.
    pub servers: BTreeSet<ServerId>,
    /// Observed per-fragment response times `(server, ms)`.
    pub fragment_times: Vec<(ServerId, f64)>,
    /// The estimated total cost of the chosen plan (for calibration
    /// inspection in tests and experiments).
    pub estimated_cost: f64,
}

/// A compiled federated query: its decomposition plus the enumerated
/// global candidates, costed and sorted cheapest-first.
pub type CompiledGlobal = (DecomposedQuery, Vec<GlobalCandidate>);

/// Observed `(server, response ms)` pairs, one per executed fragment.
pub type FragmentTimes = Vec<(ServerId, f64)>;

/// The federated information integrator.
pub struct Federation {
    nicknames: NicknameCatalog,
    wrappers: BTreeMap<ServerId, Arc<dyn Wrapper>>,
    middleware: Arc<dyn Middleware>,
    patroller: QueryPatroller,
    clock: SimClock,
    ii_load: ServerLoad,
    config: FederationConfig,
    /// The explain table: query template → winning global plan signature
    /// (the paper stores the selected plan and its estimated costs here).
    explain_table: Mutex<BTreeMap<String, String>>,
    /// Observability handle (disabled unless [`Federation::set_obs`] is
    /// called). Worker-side journal emissions ride the `Deferred` buffers
    /// so snapshots stay thread-count independent.
    obs: Obs,
    /// Admission controller (absent unless [`Federation::set_admission`]
    /// is called). `run` consults its *frozen* per-server token capacities
    /// at plan-selection time — the coordinator refreshes them only
    /// between batches, so every query in a batch gates against the same
    /// snapshot regardless of thread count.
    admission: Option<Arc<AdmissionController>>,
    /// Replica catalog (absent unless [`Federation::set_catalog`] is
    /// called). When attached, `compile` runs source selection against it
    /// *before* the EXPLAIN fan-out, pruning dominated replicas so the
    /// fan-out stays O(relevant replicas) instead of O(servers).
    catalog: Option<Arc<ReplicaCatalog>>,
}

impl Federation {
    /// Build an integrator.
    pub fn new(
        nicknames: NicknameCatalog,
        clock: SimClock,
        middleware: Arc<dyn Middleware>,
        config: FederationConfig,
    ) -> Self {
        Federation {
            nicknames,
            wrappers: BTreeMap::new(),
            middleware,
            patroller: QueryPatroller::new(),
            clock,
            ii_load: ServerLoad::new(LoadProfile::Constant(0.0), 0.02),
            config,
            explain_table: Mutex::new(BTreeMap::new()),
            obs: Obs::off(),
            admission: None,
            catalog: None,
        }
    }

    /// Attach an admission controller; `run` will gate candidate selection
    /// on its token capacities and enforce the execution deadline.
    pub fn set_admission(&mut self, admission: Arc<AdmissionController>) {
        self.admission = Some(admission);
    }

    /// The attached admission controller, if any.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// Attach a replica catalog; `compile` will prune each fragment's
    /// candidate servers through [`ReplicaCatalog::select_sources`] before
    /// dispatching the EXPLAIN fan-out.
    pub fn set_catalog(&mut self, catalog: Arc<ReplicaCatalog>) {
        self.catalog = Some(catalog);
    }

    /// The attached replica catalog, if any.
    pub fn catalog(&self) -> Option<&Arc<ReplicaCatalog>> {
        self.catalog.as_ref()
    }

    /// Mutable access to the routing knobs. Benches and tests use this to
    /// flip individual policies (e.g. `reroute_limit = 0` for a
    /// no-recovery baseline) on an already-assembled federation.
    pub fn config_mut(&mut self) -> &mut FederationConfig {
        &mut self.config
    }

    /// Attach an observability handle; the patroller journals through the
    /// same one.
    pub fn set_obs(&mut self, obs: Obs) {
        self.patroller.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Register a wrapper for a server.
    pub fn add_wrapper(&mut self, wrapper: Arc<dyn Wrapper>) {
        self.wrappers.insert(wrapper.server_id().clone(), wrapper);
    }

    /// The nickname catalog.
    pub fn nicknames(&self) -> &NicknameCatalog {
        &self.nicknames
    }

    /// The query patroller (its log is the QCC's runtime feed).
    pub fn patroller(&self) -> &QueryPatroller {
        &self.patroller
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The integrator configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The integrator's own load model (§3.2: II load affects merge cost).
    pub fn ii_load(&self) -> &ServerLoad {
        &self.ii_load
    }

    /// The wrapper registered for `server`.
    pub fn wrapper(&self, server: &ServerId) -> Result<&Arc<dyn Wrapper>> {
        self.wrappers
            .get(server)
            .ok_or_else(|| QccError::Config(format!("no wrapper for server {server}")))
    }

    /// Snapshot of the explain table (template → winning plan signature).
    pub fn explain_table(&self) -> BTreeMap<String, String> {
        self.explain_table.lock().clone()
    }

    /// Compile a query: decompose and enumerate global candidates with
    /// (possibly calibrated) costs. Advances the clock by the slowest
    /// EXPLAIN round trip (they are dispatched concurrently). Does not
    /// execute.
    pub fn explain_global(&self, sql: &str) -> Result<CompiledGlobal> {
        let qid = QueryId(u64::MAX); // sentinel: not a logged submission
        let mut effects = Deferred::new();
        let compiled = self.compile(qid, sql, &self.clock, &mut effects);
        effects.apply();
        compiled
    }

    fn compile(
        &self,
        qid: QueryId,
        sql: &str,
        clock: &SimClock,
        effects: &mut Deferred,
    ) -> Result<CompiledGlobal> {
        let decomposed = decompose(sql, &self.nicknames)?;

        // Source selection: when a replica catalog is attached, prune each
        // fragment's candidate set *before* the EXPLAIN fan-out — dominated
        // replicas (strictly worse calibrated cost AND reliability band
        // than a surviving sibling) never win the cost race, so consulting
        // them is pure network waste. Selection preserves candidate order
        // and fails open on unregistered fragments, so a world without a
        // catalog (or with an empty one) compiles exactly as before.
        let selected: Vec<Vec<ServerId>> = decomposed
            .fragments
            .iter()
            .map(|frag| match &self.catalog {
                Some(catalog) => catalog.select_sources(&frag.nicknames, &frag.candidate_servers),
                None => frag.candidate_servers.clone(),
            })
            .collect();
        if self.catalog.is_some() {
            let full: usize = decomposed
                .fragments
                .iter()
                .map(|f| f.candidate_servers.len())
                .sum();
            let kept: usize = selected.iter().map(|s| s.len()).sum();
            if kept < full {
                // Commutative counter: safe inline on worker threads (L9).
                self.obs
                    .counter_add("catalog_candidates_pruned_total", &[], (full - kept) as u64);
            }
            if self.obs.is_enabled() {
                let obs = self.obs.clone();
                let at = clock.now();
                effects.defer(move || {
                    // Per-query candidate-set-size distribution (post-prune).
                    obs.observe("catalog_candidate_set_size", &[], kept as f64);
                    if kept < full {
                        let mut fields: Vec<(&'static str, qcc_common::FieldValue)> = Vec::new();
                        if qid.0 != u64::MAX {
                            fields.push(("query", qid.0.into()));
                        }
                        fields.extend([("full", full.into()), ("kept", kept.into())]);
                        obs.event(at, "catalog_prune", fields);
                    }
                });
            }
        }

        // Scatter: every (fragment, candidate server) EXPLAIN is
        // dispatched concurrently at one snapshot — the MW fans the
        // requests out, so virtual time advances by the slowest round
        // trip, not the sum. Results gather in (fragment, server) task
        // order, making the outcome independent of the thread count.
        struct ExplainTask<'a> {
            slot: usize,
            fid: FragmentId,
            wrapper: &'a Arc<dyn Wrapper>,
            frag_sql: String,
        }
        let mut tasks: Vec<ExplainTask<'_>> = Vec::new();
        for (slot, frag) in decomposed.fragments.iter().enumerate() {
            let fid = FragmentId::new(qid, frag.index);
            for server in &selected[slot] {
                let Ok(wrapper) = self.wrapper(server) else {
                    continue;
                };
                tasks.push(ExplainTask {
                    slot,
                    fid,
                    wrapper,
                    frag_sql: frag.sql_for_server(&self.nicknames, server)?,
                });
            }
        }
        let at = clock.now();
        let outcomes = scatter_indexed(tasks.len(), self.config.threads, |i| {
            let t = &tasks[i];
            let mut local = Deferred::new();
            let result = self.middleware.plan_fragment(
                t.wrapper.as_ref(),
                qid,
                t.fid,
                &t.frag_sql,
                at,
                &mut local,
            );
            (result, local)
        });

        // Gather barrier: merge deferred effects and bucket candidates in
        // task order; one clock advance for the whole EXPLAIN fan-out.
        let mut per_fragment: Vec<Vec<FragmentCandidate>> =
            decomposed.fragments.iter().map(|_| Vec::new()).collect();
        let mut slowest = SimDuration::ZERO;
        let mut fatal = None;
        for (task, (result, local)) in tasks.iter().zip(outcomes) {
            effects.merge(local);
            match result {
                Ok((plans, took)) => {
                    slowest = slowest.max(took);
                    per_fragment[task.slot].extend(plans);
                }
                Err(QccError::ServerUnavailable(_)) | Err(QccError::ServerFault { .. }) => {
                    // A down server contributes no candidates; the MW has
                    // recorded the failure.
                }
                Err(e) => {
                    if fatal.is_none() {
                        fatal = Some(e);
                    }
                }
            }
        }
        clock.advance(slowest);
        if let Some(e) = fatal {
            return Err(e);
        }

        for (slot, frag) in decomposed.fragments.iter().enumerate() {
            let candidates = &mut per_fragment[slot];
            if candidates.is_empty() {
                return Err(QccError::NoViablePlan(format!(
                    "no server could plan fragment {} ({})",
                    frag.index, frag.stmt
                )));
            }
            // Drop candidates the calibrator pinned to infinity (downed
            // servers), unless nothing else remains.
            let finite: Vec<FragmentCandidate> = candidates
                .iter()
                .filter(|c| !c.effective_cost.is_infinite())
                .cloned()
                .collect();
            if !finite.is_empty() {
                *candidates = finite;
            }
            // Keep the cheapest plans first so candidate capping keeps the
            // most promising combinations.
            candidates.sort_by(|a, b| {
                a.effective_cost
                    .total()
                    .total_cmp(&b.effective_cost.total())
            });
        }

        // Capped Cartesian product, enumerated as index vectors in
        // lexicographic order (rightmost fragment varies fastest — the
        // same first-`cap` set the old combo-cloning loop produced);
        // only the surviving combinations materialize candidate clones.
        let cap = self.config.max_global_candidates;
        let mut combos: Vec<Vec<FragmentCandidate>> = Vec::new();
        let mut odometer = vec![0usize; per_fragment.len()];
        'enumerate: while combos.len() < cap {
            combos.push(
                odometer
                    .iter()
                    .zip(&per_fragment)
                    .map(|(&i, cands)| cands[i].clone())
                    .collect(),
            );
            let mut pos = per_fragment.len();
            loop {
                if pos == 0 {
                    break 'enumerate; // every combination enumerated
                }
                pos -= 1;
                odometer[pos] += 1;
                if odometer[pos] < per_fragment[pos].len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }

        let mut candidates: Vec<GlobalCandidate> = combos
            .into_iter()
            .map(|fragments| {
                let integration = self.estimate_integration(&decomposed, &fragments);
                GlobalCandidate {
                    integration_cost: self.middleware.calibrate_integration(integration),
                    fragments,
                }
            })
            .collect();
        candidates.sort_by(|a, b| a.total_cost().total_cmp(&b.total_cost()));

        // Compile span (covers the EXPLAIN fan-out): journaled via the
        // deferred buffer because compile runs on worker threads under
        // `submit_batch`.
        if self.obs.is_enabled() {
            let obs = self.obs.clone();
            let template = decomposed.template_signature.clone();
            let (explain_tasks, n_candidates) = (tasks.len(), candidates.len());
            let end = clock.now();
            effects.defer(move || {
                let mut fields: Vec<(&'static str, qcc_common::FieldValue)> = Vec::new();
                if qid.0 != u64::MAX {
                    fields.push(("query", qid.0.into()));
                }
                fields.extend([
                    ("template", template.into()),
                    ("explain_tasks", explain_tasks.into()),
                    ("candidates", n_candidates.into()),
                ]);
                obs.span("compile", at, end, fields);
            });
        }
        Ok((decomposed, candidates))
    }

    /// Estimated merge cost at the integrator for one fragment-candidate
    /// combination, using a virtual catalog whose table statistics come
    /// from the fragments' estimated cardinalities.
    fn estimate_integration(
        &self,
        decomposed: &DecomposedQuery,
        fragments: &[FragmentCandidate],
    ) -> Cost {
        let MergeSpec::Merge { stmt } = &decomposed.merge else {
            return Cost::ZERO;
        };
        let mut catalog = Catalog::new();
        for (i, frag) in decomposed.fragments.iter().enumerate() {
            let schema = frag.output_schema();
            let card = fragments
                .get(i)
                .map(|f| f.effective_cost.cardinality)
                .unwrap_or(1.0)
                .max(1.0) as u64;
            let columns = schema
                .columns()
                .iter()
                .map(|_| ColumnStats {
                    distinct: (card / 2).max(1),
                    ..ColumnStats::default()
                })
                .collect();
            let stats = TableStats::virtual_table(card, 8.0 * schema.len() as f64, columns);
            catalog.register_virtual(Table::new(frag_table(i), schema), stats);
        }
        let engine = Engine::new(catalog);
        match engine.explain(&stmt.to_string()) {
            Ok(plans) if !plans.is_empty() => plans[0].cost.calibrate(1.0 / self.config.ii_speed),
            _ => Cost::fixed(1.0),
        }
    }

    /// Submit a federated query: compile, choose a global plan, execute
    /// the fragments remotely (in parallel), merge locally, and log it all.
    pub fn submit(&self, sql: &str) -> Result<QueryOutcome> {
        let submitted = self.clock.now();
        let qid = self.patroller.record_submit(sql, submitted);
        let mut effects = Deferred::new();
        let result = self.run(qid, sql, &self.clock, &mut effects, None);
        effects.apply();
        match result {
            Ok(outcome) => {
                self.patroller.record_complete(qid, self.clock.now());
                Ok(outcome)
            }
            Err(e) => {
                self.patroller
                    .record_failure(qid, self.clock.now(), e.to_string());
                Err(e)
            }
        }
    }

    /// Submit a batch of federated queries that logically start at the
    /// same instant, spread across the scatter worker pool.
    ///
    /// Each query runs against a private clock forked from the shared
    /// snapshot ([`SimClock::at`]); the coordinator gathers in
    /// submission-index order, applying each query's deferred side
    /// effects and patroller completion before the next query's, then
    /// advances the shared clock once — to the latest per-query end time.
    /// Every query in the batch therefore routes against the same frozen
    /// adaptive state (load balancer, calibration, reliability):
    /// adaptation happens at batch granularity, and the outcomes are
    /// byte-identical for any `threads` setting, including 1.
    pub fn submit_batch(&self, sqls: &[String]) -> Vec<Result<QueryOutcome>> {
        self.submit_batch_with_budgets(sqls, &[])
    }

    /// [`Federation::submit_batch`] with an optional remaining deadline
    /// budget per query (virtual ms from dispatch, as handed out by the
    /// admission queue). A query's effective execution deadline is the
    /// smaller of the configured `exec_deadline_ms` and its budget, so a
    /// ticket that spent most of its budget queueing gets a proportionally
    /// tighter retry/hedge horizon. `budgets` may be empty (no budgets) or
    /// must match `sqls` in length; `None` entries mean "no budget".
    pub fn submit_batch_with_budgets(
        &self,
        sqls: &[String],
        budgets: &[Option<f64>],
    ) -> Vec<Result<QueryOutcome>> {
        let t0 = self.clock.now();
        let qids: Vec<QueryId> = sqls
            .iter()
            .map(|sql| self.patroller.record_submit(sql, t0))
            .collect();
        let outcomes = scatter_indexed(sqls.len(), self.config.threads, |i| {
            let clock = SimClock::at(t0);
            let mut local = Deferred::new();
            let budget = budgets.get(i).copied().flatten();
            let result = self.run(qids[i], &sqls[i], &clock, &mut local, budget);
            (result, local, clock.now())
        });
        let mut latest = t0;
        let mut out = Vec::with_capacity(sqls.len());
        for (i, (result, local, end)) in outcomes.into_iter().enumerate() {
            local.apply();
            match &result {
                Ok(_) => self.patroller.record_complete(qids[i], end),
                Err(e) => self.patroller.record_failure(qids[i], end, e.to_string()),
            }
            if end > latest {
                latest = end;
            }
            out.push(result);
        }
        self.clock.advance_to(latest);
        out
    }

    fn run(
        &self,
        qid: QueryId,
        sql: &str,
        clock: &SimClock,
        effects: &mut Deferred,
        budget_ms: Option<f64>,
    ) -> Result<QueryOutcome> {
        let submitted = clock.now();
        let (decomposed, mut candidates) = self.compile(qid, sql, clock, effects)?;
        if candidates.is_empty() {
            return Err(QccError::NoViablePlan("no global candidates".into()));
        }
        let mut banned: BTreeSet<ServerId> = BTreeSet::new();
        // Effective execution deadline: the configured per-dispatch limit,
        // tightened by whatever remains of the ticket's arrival-relative
        // budget. A ticket dispatched with (almost) nothing left keeps a
        // hair of budget so the deadline machinery stays armed rather than
        // reading 0.0 as "disabled".
        let configured = self
            .admission
            .as_ref()
            .map(|a| a.config().exec_deadline_ms)
            .unwrap_or(0.0);
        let exec_deadline_ms = match budget_ms {
            Some(budget) => {
                let budget = budget.max(0.001);
                if configured > 0.0 {
                    configured.min(budget)
                } else {
                    budget
                }
            }
            None => configured,
        };

        // The retry *budget*: up to `retry_limit` re-routes, but the
        // execution deadline can forfeit whatever budget remains.
        for attempt in 0..=self.config.retry_limit {
            if attempt > 0 && exec_deadline_ms > 0.0 {
                let elapsed = clock.now().since(submitted).as_millis();
                if elapsed > exec_deadline_ms {
                    self.obs
                        .counter_inc("deadline_exceeded_total", &[("stage", "retry")]);
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let at = clock.now();
                        effects.defer(move || {
                            obs.event(
                                at,
                                "deadline_exceeded",
                                vec![
                                    ("query", qid.0.into()),
                                    ("stage", "retry".into()),
                                    ("attempt", (attempt as u64).into()),
                                    ("elapsed_ms", elapsed.into()),
                                    ("deadline_ms", exec_deadline_ms.into()),
                                ],
                            );
                        });
                    }
                    return Err(QccError::DeadlineExceeded(format!(
                        "retry budget forfeited after {elapsed:.3}ms (deadline {exec_deadline_ms}ms)"
                    )));
                }
            }
            // Filter candidates avoiding servers that already failed.
            let viable: Vec<&GlobalCandidate> = candidates
                .iter()
                .filter(|c| c.server_set().is_disjoint(&banned))
                .collect();
            if viable.is_empty() {
                break;
            }
            // Token gate: a plan is admissible only if every server it
            // touches has concurrency tokens in the frozen snapshot. A
            // nonempty blocked set means the router steered around a
            // token-exhausted server (a "token wait" — in virtual time the
            // wait materializes as a reroute, never a sleep).
            let (viable, blocked_count) = match &self.admission {
                Some(admission) => {
                    let (admissible, blocked): (Vec<&GlobalCandidate>, Vec<&GlobalCandidate>) =
                        viable.into_iter().partition(|c| {
                            c.server_set().iter().all(|s| admission.capacity(s) > 0)
                        });
                    (admissible, blocked.len())
                }
                None => (viable, 0),
            };
            if blocked_count > 0 {
                self.obs.counter_inc("token_waits_total", &[]);
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    let at = clock.now();
                    effects.defer(move || {
                        obs.event(
                            at,
                            "token_wait",
                            vec![
                                ("query", qid.0.into()),
                                ("attempt", (attempt as u64).into()),
                                ("blocked_candidates", blocked_count.into()),
                            ],
                        );
                    });
                }
            }
            if viable.is_empty() {
                // Every surviving plan needs a token-exhausted server:
                // shed before any fragment work rather than pile on.
                if let Some(admission) = &self.admission {
                    admission.note_shed("no_tokens");
                }
                return Err(QccError::Shed(
                    "no token-admissible global plan (all candidate servers exhausted)".into(),
                ));
            }
            let viable_owned: Vec<GlobalCandidate> = viable.into_iter().cloned().collect();
            let idx = self
                .middleware
                .choose_global(&decomposed.template_signature, &viable_owned, effects)
                .min(viable_owned.len() - 1);
            let chosen = &viable_owned[idx];
            // Inline (not deferred) by design: within one batch every
            // query sees the same frozen routing state, so same-template
            // queries write the same winner — the table's contents are
            // deterministic even though the write order is not.
            self.explain_table
                .lock()
                .insert(decomposed.template_signature.clone(), chosen.signature());

            // Hedged dispatch: when the remaining deadline budget is
            // nearly exhausted relative to a fragment's calibrated
            // estimate, line up a second within-band replica for that
            // fragment. Both run concurrently; the faster result wins and
            // the loser is suppressed at the merge.
            let hedges = self.plan_hedges(chosen, &candidates, &banned, exec_deadline_ms, {
                clock.now().since(submitted).as_millis()
            });
            for (slot, alt) in &hedges {
                self.obs
                    .counter_inc("hedges_total", &[("server", alt.plan.server.as_str())]);
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    let at = clock.now();
                    let primary = chosen.fragments[*slot].plan.server.to_string();
                    let hedge = alt.plan.server.to_string();
                    let est = chosen.fragments[*slot].effective_cost.total();
                    let slot = *slot;
                    effects.defer(move || {
                        obs.event(
                            at,
                            "hedge",
                            vec![
                                ("query", qid.0.into()),
                                ("fragment", slot.into()),
                                ("primary", primary.into()),
                                ("hedge", hedge.into()),
                                ("est_ms", est.into()),
                            ],
                        );
                    });
                }
            }

            // Adaptivity on: streamed execution with stall detection and
            // remainder re-dispatch. Off (stall_factor == 0): the original
            // call-and-wait path, byte-identical.
            let executed = if self.config.stall_factor > 0.0 {
                self.execute_global_streaming(
                    qid,
                    &decomposed,
                    chosen,
                    &hedges,
                    &candidates,
                    &banned,
                    clock,
                    effects,
                )
            } else {
                self.execute_global(qid, &decomposed, chosen, &hedges, clock, effects)
            };
            match executed {
                Ok((rows, fragment_times)) => {
                    let response_ms = clock.now().since(submitted).as_millis();
                    if exec_deadline_ms > 0.0 && response_ms > exec_deadline_ms {
                        // Completed, but late: the result still counts, the
                        // goodput accounting does not.
                        self.obs.counter_inc("deadline_misses_total", &[]);
                        if self.obs.is_enabled() {
                            let obs = self.obs.clone();
                            let at = clock.now();
                            effects.defer(move || {
                                obs.event(
                                    at,
                                    "deadline_exceeded",
                                    vec![
                                        ("query", qid.0.into()),
                                        ("stage", "completion".into()),
                                        ("elapsed_ms", response_ms.into()),
                                        ("deadline_ms", exec_deadline_ms.into()),
                                    ],
                                );
                            });
                        }
                    }
                    self.middleware.observe_query(
                        qid,
                        &decomposed.template_signature,
                        chosen.total_cost(),
                        response_ms,
                        effects,
                    );
                    // A success after at least one ban is a reroute: the
                    // retry loop found a plan avoiding the failed servers.
                    if self.obs.is_enabled() && !banned.is_empty() {
                        let obs = self.obs.clone();
                        let at = clock.now();
                        let servers = join_servers(&chosen.server_set());
                        effects.defer(move || {
                            obs.event(
                                at,
                                "reroute",
                                vec![
                                    ("query", qid.0.into()),
                                    ("attempt", (attempt as u64).into()),
                                    ("servers", servers.into()),
                                ],
                            );
                        });
                    }
                    return Ok(QueryOutcome {
                        id: qid,
                        rows,
                        response_ms,
                        chosen_signature: chosen.signature(),
                        servers: chosen.server_set(),
                        fragment_times,
                        estimated_cost: chosen.total_cost(),
                    });
                }
                Err(QccError::ServerUnavailable(s))
                | Err(QccError::ServerFault { server: s, .. }) => {
                    // Ban the failed server and re-route. The middleware
                    // has already recorded the failure (reliability input).
                    self.obs.counter_inc("retries_total", &[]);
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let at = clock.now();
                        let srv = s.to_string();
                        effects.defer(move || {
                            obs.event(
                                at,
                                "server_banned",
                                vec![
                                    ("query", qid.0.into()),
                                    ("server", srv.into()),
                                    ("attempt", (attempt as u64).into()),
                                ],
                            );
                        });
                    }
                    banned.insert(s);
                    candidates.retain(|c| c.server_set().is_disjoint(&banned));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(QccError::NoViablePlan(format!(
            "all retries exhausted; unavailable servers: {banned:?}"
        )))
    }

    /// Choose a hedge replica for every pressured fragment of `chosen`:
    /// one whose remaining deadline budget (`exec_deadline_ms` minus
    /// `elapsed_ms`) is below `hedge_slack_factor ×` its calibrated cost.
    /// The replica is the cheapest alternate plan for the same fragment
    /// slot from the enumerated candidate `pool` that sits on a different,
    /// unbanned server with token capacity, within `hedge_band ×` the
    /// primary's cost (ties broken by server id — fully deterministic
    /// against the frozen admission snapshot).
    fn plan_hedges(
        &self,
        chosen: &GlobalCandidate,
        pool: &[GlobalCandidate],
        banned: &BTreeSet<ServerId>,
        exec_deadline_ms: f64,
        elapsed_ms: f64,
    ) -> BTreeMap<usize, FragmentCandidate> {
        let mut hedges = BTreeMap::new();
        let Some(admission) = &self.admission else {
            return hedges;
        };
        let slack = admission.config().hedge_slack_factor;
        if slack <= 0.0 || exec_deadline_ms <= 0.0 {
            return hedges;
        }
        let remaining = exec_deadline_ms - elapsed_ms;
        let band = admission.config().hedge_band.max(1.0);
        for (slot, primary) in chosen.fragments.iter().enumerate() {
            let est = primary.effective_cost.total();
            if est <= 0.0 || remaining >= slack * est {
                continue;
            }
            let limit = est * band;
            let mut best: Option<&FragmentCandidate> = None;
            for cand in pool {
                let Some(alt) = cand.fragments.get(slot) else {
                    continue;
                };
                if alt.plan.server == primary.plan.server
                    || banned.contains(&alt.plan.server)
                    || admission.capacity(&alt.plan.server) == 0
                    || alt.effective_cost.total() > limit
                {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => match alt
                        .effective_cost
                        .total()
                        .total_cmp(&b.effective_cost.total())
                    {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => alt.plan.server < b.plan.server,
                    },
                };
                if better {
                    best = Some(alt);
                }
            }
            if let Some(alt) = best {
                hedges.insert(slot, alt.clone());
            }
        }
        hedges
    }

    /// Execute the fragments of a chosen global plan in parallel worker
    /// threads — every fragment (and every hedge replica) stamped with the
    /// shared `start` snapshot, results gathered in task-index order
    /// (primaries first, then hedges), one coordinator-side clock advance
    /// by the slowest *winning* fragment — then merge. Where a hedge ran,
    /// the faster success wins its slot (ties favour the primary), the
    /// loser's rows are suppressed at the merge, and a hedge that succeeds
    /// where its primary failed rescues the query without burning a retry.
    fn execute_global(
        &self,
        qid: QueryId,
        decomposed: &DecomposedQuery,
        chosen: &GlobalCandidate,
        hedges: &BTreeMap<usize, FragmentCandidate>,
        clock: &SimClock,
        effects: &mut Deferred,
    ) -> Result<(Vec<Row>, FragmentTimes)> {
        let start = clock.now();
        let n = chosen.fragments.len();
        let hedge_tasks: Vec<(usize, &FragmentCandidate)> =
            hedges.iter().map(|(slot, cand)| (*slot, cand)).collect();
        let task_candidate = |i: usize| -> &FragmentCandidate {
            if i < n {
                &chosen.fragments[i]
            } else {
                hedge_tasks[i - n].1
            }
        };
        let outcomes = scatter_indexed(n + hedge_tasks.len(), self.config.threads, |i| {
            let cand = task_candidate(i);
            let mut local = Deferred::new();
            let result = self.wrapper(&cand.plan.server).and_then(|wrapper| {
                self.middleware.execute_fragment(
                    wrapper.as_ref(),
                    qid,
                    cand.fragment,
                    &cand.plan,
                    start,
                    &mut local,
                )
            });
            (result, local)
        });

        // Gather barrier: every task ran, so every task's observations are
        // merged (in index order: primaries, then hedges) before the first
        // error — if any — is surfaced. Per slot the winner is the fastest
        // success among primary and hedge.
        let mut primary: Vec<Option<qcc_wrapper::WrapperResult>> = (0..n).map(|_| None).collect();
        let mut hedge: Vec<Option<qcc_wrapper::WrapperResult>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, QccError)> = None;
        for (i, (result, local)) in outcomes.into_iter().enumerate() {
            effects.merge(local);
            let cand = task_candidate(i);
            let slot = if i < n { i } else { hedge_tasks[i - n].0 };
            match result {
                Ok(result) => {
                    self.obs
                        .counter_inc("fragments_total", &[("server", cand.plan.server.as_str())]);
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let server = cand.plan.server.to_string();
                        let signature = cand.plan.signature.clone();
                        let ms = result.response_time.as_millis();
                        effects.defer(move || {
                            obs.event(
                                start,
                                "fragment",
                                vec![
                                    ("query", qid.0.into()),
                                    ("server", server.into()),
                                    ("signature", signature.into()),
                                    ("ms", ms.into()),
                                ],
                            );
                        });
                    }
                    if i < n {
                        primary[slot] = Some(result);
                    } else {
                        hedge[slot] = Some(result);
                    }
                }
                Err(e) => {
                    // A failed primary may still be rescued by its hedge;
                    // remember the earliest-slot primary error in case not.
                    let rank = if i < n { slot } else { n + slot };
                    if first_err.as_ref().map(|(r, _)| rank < *r).unwrap_or(true) {
                        first_err = Some((rank, e));
                    }
                }
            }
        }

        let mut results = Vec::with_capacity(n);
        let mut slowest = SimDuration::ZERO;
        let mut fragment_times = Vec::new();
        for slot in 0..n {
            let p = primary[slot].take();
            let h = hedge[slot].take();
            let had_both = p.is_some() && h.is_some();
            let (winner, hedged) = match (p, h) {
                (Some(p), Some(h)) => {
                    // Tie favours the primary: the hedge is insurance, not
                    // a reroute.
                    if h.response_time < p.response_time {
                        (h, true)
                    } else {
                        (p, false)
                    }
                }
                (Some(p), None) => (p, false),
                (None, Some(h)) => (h, true),
                (None, None) => {
                    let (_, e) = first_err.take().unwrap_or((
                        0,
                        QccError::Execution(format!("fragment {slot} produced no result")),
                    ));
                    return Err(e);
                }
            };
            let winner_server = if hedged {
                hedges[&slot].plan.server.clone()
            } else {
                chosen.fragments[slot].plan.server.clone()
            };
            if hedged {
                self.obs.counter_inc("hedge_wins_total", &[]);
            }
            if had_both {
                // Duplicate suppression: exactly one of the two results
                // feeds the merge; journal which replica was dropped.
                self.obs
                    .counter_inc("hedge_duplicates_suppressed_total", &[]);
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    let winner = winner_server.to_string();
                    let suppressed = if hedged {
                        chosen.fragments[slot].plan.server.to_string()
                    } else {
                        hedges[&slot].plan.server.to_string()
                    };
                    effects.defer(move || {
                        obs.event(
                            start,
                            "hedge_result",
                            vec![
                                ("query", qid.0.into()),
                                ("fragment", slot.into()),
                                ("winner", winner.into()),
                                ("suppressed", suppressed.into()),
                            ],
                        );
                    });
                }
            }
            slowest = slowest.max(winner.response_time);
            fragment_times.push((winner_server, winner.response_time.as_millis()));
            results.push(winner);
        }
        clock.advance(slowest);
        self.merge_global(qid, decomposed, results, fragment_times, clock, effects)
    }

    /// Merge gathered fragment results at the integrator (shared tail of
    /// the call-and-wait and streaming execution paths).
    fn merge_global(
        &self,
        qid: QueryId,
        decomposed: &DecomposedQuery,
        results: Vec<qcc_wrapper::WrapperResult>,
        fragment_times: FragmentTimes,
        clock: &SimClock,
        effects: &mut Deferred,
    ) -> Result<(Vec<Row>, FragmentTimes)> {
        match &decomposed.merge {
            MergeSpec::Passthrough => {
                let rows = results
                    .into_iter()
                    .next()
                    .map(|r| r.rows())
                    .unwrap_or_default();
                Ok((rows, fragment_times))
            }
            MergeSpec::Merge { stmt } => {
                // Register the shipped fragment batches as temp tables —
                // adopting the columnar data without copying — and run the
                // merge with the real engine.
                let mut catalog = Catalog::new();
                for (i, (frag, result)) in decomposed.fragments.iter().zip(results).enumerate() {
                    let table =
                        Table::from_batches(frag_table(i), frag.output_schema(), result.batches)
                            .map_err(|e| {
                                QccError::Execution(format!("fragment {i} result mismatch: {e}"))
                            })?;
                    catalog.register(table);
                }
                let engine = Engine::new(catalog);
                let (rows, work) = engine.execute_sql(&stmt.to_string())?;
                let merge_start = clock.now();
                let rho = self.ii_load.utilization(merge_start);
                let merge_ms = work.cpu_units / self.config.ii_speed * slowdown(rho, 1.0);
                clock.advance(SimDuration::from_millis(merge_ms));
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    effects.defer(move || {
                        obs.event(
                            merge_start,
                            "merge",
                            vec![("query", qid.0.into()), ("ms", merge_ms.into())],
                        );
                    });
                }
                Ok((rows, fragment_times))
            }
        }
    }

    /// Streamed execution with mid-query adaptivity (DESIGN.md §15). The
    /// scatter fans out cursor-0 streams for every fragment (and hedge
    /// replica); the gather then resolves slots sequentially on the
    /// coordinator. A stream that completed within `stall_factor ×` its
    /// calibrated estimate is accepted as-is — the fast path matches the
    /// call-and-wait semantics. Otherwise the stall detector cancels the
    /// stream (at the threshold instant, or one probe interval after a
    /// mid-stream interrupt) and re-dispatches the *remainder* — the
    /// cursor position, not the whole fragment — to a within-band replica.
    /// Duplicate rows are impossible by construction: each chunk index is
    /// merged from exactly one source, and late chunks of a cancelled
    /// stream are counted as suppressed, never merged.
    #[allow(clippy::too_many_arguments)]
    fn execute_global_streaming(
        &self,
        qid: QueryId,
        decomposed: &DecomposedQuery,
        chosen: &GlobalCandidate,
        hedges: &BTreeMap<usize, FragmentCandidate>,
        pool: &[GlobalCandidate],
        banned: &BTreeSet<ServerId>,
        clock: &SimClock,
        effects: &mut Deferred,
    ) -> Result<(Vec<Row>, FragmentTimes)> {
        let start = clock.now();
        let n = chosen.fragments.len();
        let hedge_tasks: Vec<(usize, &FragmentCandidate)> =
            hedges.iter().map(|(slot, cand)| (*slot, cand)).collect();
        let task_candidate = |i: usize| -> &FragmentCandidate {
            if i < n {
                &chosen.fragments[i]
            } else {
                hedge_tasks[i - n].1
            }
        };
        let outcomes = scatter_indexed(n + hedge_tasks.len(), self.config.threads, |i| {
            let cand = task_candidate(i);
            let mut local = Deferred::new();
            let result = self.wrapper(&cand.plan.server).and_then(|wrapper| {
                self.middleware.execute_fragment_stream(
                    wrapper.as_ref(),
                    qid,
                    cand.fragment,
                    &cand.plan,
                    start,
                    0,
                    &mut local,
                )
            });
            (result, local)
        });

        // Gather barrier: merge every task's deferred observations in task
        // order (primaries, then hedges) before any slot is resolved.
        let mut primary: Vec<Option<WrapperStream>> = (0..n).map(|_| None).collect();
        let mut hedge: Vec<Option<WrapperStream>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, QccError)> = None;
        for (i, (result, local)) in outcomes.into_iter().enumerate() {
            effects.merge(local);
            let slot = if i < n { i } else { hedge_tasks[i - n].0 };
            match result {
                Ok(stream) => {
                    if i < n {
                        primary[slot] = Some(stream);
                    } else {
                        hedge[slot] = Some(stream);
                    }
                }
                Err(e) => {
                    let rank = if i < n { slot } else { n + slot };
                    if first_err.as_ref().map(|(r, _)| rank < *r).unwrap_or(true) {
                        first_err = Some((rank, e));
                    }
                }
            }
        }

        // Slot resolution runs on the coordinator, in slot order — fully
        // deterministic for any thread count (everything past the barrier
        // is sequential).
        let mut results: Vec<WrapperResult> = Vec::with_capacity(n);
        let mut fragment_times: FragmentTimes = Vec::new();
        let mut slowest = SimDuration::ZERO;
        for slot in 0..n {
            let primary_cand = &chosen.fragments[slot];
            let est = primary_cand.effective_cost.total();
            let threshold_ms = if est > 0.0 {
                self.config.stall_factor * est
            } else {
                f64::INFINITY
            };
            let p = primary[slot].take();
            let h = hedge[slot].take();
            let clean = |s: &WrapperStream| {
                s.outcome == StreamOutcome::Complete && s.response_time.as_millis() <= threshold_ms
            };
            // Classify the slot once: `Ok` carries the clean winner (plus
            // the losing stream and whether the winner was the hedge),
            // `Err` hands both streams to the stall path untouched.
            let picked = match (p, h) {
                (Some(pp), Some(hh)) => match (clean(&pp), clean(&hh)) {
                    // PR 8's hedge race, now on streams: the fastest clean
                    // completion wins its slot, ties favour the primary.
                    (true, true) => {
                        if hh.response_time < pp.response_time {
                            Ok((hh, Some(pp), true))
                        } else {
                            Ok((pp, Some(hh), false))
                        }
                    }
                    (true, false) => Ok((pp, Some(hh), false)),
                    (false, true) => Ok((hh, Some(pp), true)),
                    (false, false) => Err((Some(pp), Some(hh))),
                },
                (Some(pp), None) if clean(&pp) => Ok((pp, None, false)),
                (None, Some(hh)) if clean(&hh) => Ok((hh, None, true)),
                (pp, hh) => Err((pp, hh)),
            };
            match picked {
                Ok((winner, loser, use_hedge)) => {
                    let winner_cand = if use_hedge {
                        &hedges[&slot]
                    } else {
                        primary_cand
                    };
                    if use_hedge {
                        self.obs.counter_inc("hedge_wins_total", &[]);
                    }
                    self.note_complete_stream(qid, winner_cand, &winner, start, effects);
                    if let Some(loser) = loser {
                        if loser.outcome == StreamOutcome::Complete {
                            // A full duplicate arrived; suppress it at the
                            // merge, but keep its honest whole-fragment sample
                            // for calibration (as the call-and-wait path did).
                            let loser_cand = if use_hedge {
                                primary_cand
                            } else {
                                &hedges[&slot]
                            };
                            self.note_complete_stream(qid, loser_cand, &loser, start, effects);
                            self.defer_suppression(
                                qid,
                                slot,
                                &winner_cand.plan.server,
                                &loser_cand.plan.server,
                                start,
                                effects,
                            );
                        }
                    }
                    slowest = slowest.max(winner.response_time);
                    fragment_times.push((
                        winner_cand.plan.server.clone(),
                        winner.response_time.as_millis(),
                    ));
                    results.push(stream_result(winner));
                }
                Err((p, h)) => {
                    // No clean completion: pick the base stream the detector
                    // acts on — a complete-but-slow stream first, then an
                    // interrupted primary, then an interrupted hedge.
                    let is_complete = |s: &Option<WrapperStream>| matches!(s, Some(s) if s.outcome == StreamOutcome::Complete);
                    let p_complete = is_complete(&p);
                    let h_complete = is_complete(&h);
                    let (base_is_hedge, base, other) = match (p, h) {
                        (Some(pp), hh) if p_complete => (false, pp, hh),
                        (pp, Some(hh)) if h_complete => (true, hh, pp),
                        (Some(pp), hh) => (false, pp, hh),
                        (None, Some(hh)) => (true, hh, None),
                        (None, None) => {
                            let (_, e) = first_err.take().unwrap_or((
                                0,
                                QccError::Execution(format!("fragment {slot} produced no result")),
                            ));
                            return Err(e);
                        }
                    };
                    let base_cand = if base_is_hedge {
                        &hedges[&slot]
                    } else {
                        primary_cand
                    };
                    let other_server = other.as_ref().map(|_| {
                        if base_is_hedge {
                            primary_cand.plan.server.clone()
                        } else {
                            hedges[&slot].plan.server.clone()
                        }
                    });
                    let other_complete = other
                        .as_ref()
                        .map(|s| s.outcome == StreamOutcome::Complete)
                        .unwrap_or(false);
                    let (result, server) = self.resolve_stall(
                        qid,
                        slot,
                        decomposed,
                        primary_cand,
                        base_cand,
                        base,
                        other_server.clone(),
                        pool,
                        banned,
                        threshold_ms,
                        start,
                        effects,
                    )?;
                    if other_complete {
                        // The unused replica completed in full; its rows are
                        // suppressed at the merge like any hedge duplicate.
                        // (`other_complete` implies the replica stream exists,
                        // so `other_server` was derived from it above.)
                        if let Some(other_server) = other_server.as_ref() {
                            self.defer_suppression(
                                qid,
                                slot,
                                &server,
                                other_server,
                                start,
                                effects,
                            );
                        }
                    }
                    slowest = slowest.max(result.response_time);
                    fragment_times.push((server, result.response_time.as_millis()));
                    results.push(result);
                }
            }
        }
        clock.advance(slowest);
        self.merge_global(qid, decomposed, results, fragment_times, clock, effects)
    }

    /// Cancel a stalled (or interrupted) base stream and re-dispatch its
    /// remainder — the chunks past the cursor — to within-band replicas,
    /// chaining across further interrupts up to `reroute_limit` attempts.
    /// Returns the stitched slot result and the server that finished it.
    #[allow(clippy::too_many_arguments)]
    fn resolve_stall(
        &self,
        qid: QueryId,
        slot: usize,
        decomposed: &DecomposedQuery,
        primary_cand: &FragmentCandidate,
        base_cand: &FragmentCandidate,
        base: WrapperStream,
        exclude_also: Option<ServerId>,
        pool: &[GlobalCandidate],
        banned: &BTreeSet<ServerId>,
        threshold_ms: f64,
        start: SimTime,
        effects: &mut Deferred,
    ) -> Result<(WrapperResult, ServerId)> {
        use qcc_common::obs::reroute_events as ev;
        let probe = SimDuration::from_millis(self.config.reroute_probe_ms.max(0.0));
        let base_server = base_cand.plan.server.clone();
        let mut excluded = banned.clone();
        excluded.insert(base_server.clone());
        if let Some(s) = exclude_also {
            excluded.insert(s);
        }

        if base.outcome == StreamOutcome::Complete {
            let cancel_at = start + SimDuration::from_millis(threshold_ms);
            let tail_only = base.chunks.iter().all(|c| c.at <= cancel_at);
            if tail_only
                || self
                    .pick_reroute_replica(slot, decomposed, primary_cand, pool, &excluded)
                    .is_none()
            {
                // Every chunk beat the threshold (only the transfer tail
                // overran), or no within-band replica exists: cancelling
                // gains nothing, so the slow result is kept whole.
                self.obs.counter_inc(
                    "reroute_declined_total",
                    &[("reason", if tail_only { "tail" } else { "no_replica" })],
                );
                self.note_complete_stream(qid, base_cand, &base, start, effects);
                let server = base_cand.plan.server.clone();
                return Ok((stream_result(base), server));
            }
        }

        // The detection instant, the chunks the integrator keeps, and the
        // late chunks it must suppress.
        let (cancel_at, mut reason, kept, suppressed_late, mut fault_ms) = match base.outcome {
            StreamOutcome::Interrupted { at } => {
                // The source died mid-stream; every delivered chunk
                // precedes the transition, and detection costs one probe
                // interval.
                (
                    at + probe,
                    "interrupt",
                    base.chunks,
                    0usize,
                    Some(at.as_millis()),
                )
            }
            StreamOutcome::Complete => {
                let cancel_at = start + SimDuration::from_millis(threshold_ms);
                let (kept, late): (Vec<StreamChunk>, Vec<StreamChunk>) =
                    base.chunks.into_iter().partition(|c| c.at <= cancel_at);
                (cancel_at, "slow", kept, late.len(), None)
            }
        };
        let total_chunks = base.total_chunks;
        self.defer_stall_event(
            qid,
            slot,
            &base_server,
            reason,
            cancel_at,
            start,
            threshold_ms,
            effects,
        );
        if reason == "slow" {
            // A stall-cancel is soft reliability evidence; the interrupt
            // case was already recorded (at the transition instant) by the
            // middleware when the stream came back cut.
            self.middleware.observe_fragment_cancel(
                qid,
                primary_cand.fragment,
                &base_server,
                cancel_at,
                effects,
            );
        }
        if suppressed_late > 0 {
            self.obs.counter_add(
                "reroute_chunks_suppressed_total",
                &[],
                suppressed_late as u64,
            );
        }

        let mut kept = kept;
        let mut sources: Vec<(ServerId, usize, usize)> = Vec::new();
        if !kept.is_empty() {
            sources.push((base_server.clone(), 0, kept.len()));
        }
        let mut cursor = kept.len();
        let mut now = cancel_at;
        let mut last_failed = base_server.clone();
        for _attempt in 0..self.config.reroute_limit {
            let Some(alt) =
                self.pick_reroute_replica(slot, decomposed, primary_cand, pool, &excluded)
            else {
                break;
            };
            let alt_server = alt.plan.server.clone();
            // The remainder rides the slot's admission token — consult the
            // frozen capacity snapshot (inside the picker) but consume
            // nothing, and journal the reuse.
            if let Some(admission) = &self.admission {
                admission.note_reroute_reuse(&alt_server);
            }
            self.obs.counter_inc(
                "fragment_reroutes_total",
                &[("server", alt_server.as_str())],
            );
            if self.obs.is_enabled() {
                let obs = self.obs.clone();
                let (from, to) = (last_failed.to_string(), alt_server.to_string());
                let est = primary_cand.effective_cost.total();
                let frag_start_ms = start.as_millis();
                let fault = fault_ms;
                let finite_threshold = threshold_ms.is_finite().then_some(threshold_ms);
                effects.defer(move || {
                    let mut fields: Vec<(&'static str, qcc_common::FieldValue)> = vec![
                        ("query", qid.0.into()),
                        ("fragment", slot.into()),
                        ("from", from.into()),
                        ("to", to.into()),
                        ("cursor", cursor.into()),
                        ("total_chunks", total_chunks.into()),
                        ("reason", reason.into()),
                        ("est_ms", est.into()),
                        ("frag_start_ms", frag_start_ms.into()),
                    ];
                    if let Some(t) = finite_threshold {
                        fields.push(("threshold_ms", t.into()));
                    }
                    if let Some(f) = fault {
                        fields.push(("fault_ms", f.into()));
                    }
                    obs.event(now, ev::REROUTE_DISPATCH, fields);
                });
            }
            let Ok(wrapper) = self.wrapper(&alt_server) else {
                excluded.insert(alt_server.clone());
                last_failed = alt_server;
                continue;
            };
            match self.middleware.execute_fragment_stream(
                wrapper.as_ref(),
                qid,
                primary_cand.fragment,
                &alt.plan,
                now,
                cursor,
                effects,
            ) {
                Ok(stream) if stream.outcome == StreamOutcome::Complete => {
                    let end = now + stream.response_time;
                    self.obs
                        .counter_inc("fragments_total", &[("server", alt_server.as_str())]);
                    self.obs
                        .counter_inc("fragment_resumes_total", &[("server", alt_server.as_str())]);
                    sources.push((alt_server.clone(), cursor, stream.next_cursor()));
                    // Note: no `observe_fragment` for the remainder — a
                    // partial run is not a valid calibration sample for
                    // the whole-fragment estimate.
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let server = alt_server.to_string();
                        let signature = alt.plan.signature.clone();
                        let ms = stream.response_time.as_millis();
                        let delivered = stream.delivered();
                        let provenance = sources
                            .iter()
                            .map(|(s, a, b)| format!("{s}:{a}..{b}"))
                            .collect::<Vec<_>>()
                            .join("+");
                        let resume_cursor = cursor;
                        effects.defer(move || {
                            obs.event(
                                now,
                                "fragment",
                                vec![
                                    ("query", qid.0.into()),
                                    ("server", server.clone().into()),
                                    ("signature", signature.into()),
                                    ("ms", ms.into()),
                                ],
                            );
                            obs.event(
                                end,
                                ev::FRAGMENT_RESUME,
                                vec![
                                    ("query", qid.0.into()),
                                    ("fragment", slot.into()),
                                    ("server", server.into()),
                                    ("cursor", resume_cursor.into()),
                                    ("chunks", delivered.into()),
                                    ("ms", ms.into()),
                                ],
                            );
                            obs.event(
                                end,
                                ev::FRAGMENT_STREAM,
                                vec![
                                    ("query", qid.0.into()),
                                    ("fragment", slot.into()),
                                    ("sources", provenance.into()),
                                    ("total_chunks", total_chunks.into()),
                                ],
                            );
                        });
                    }
                    kept.extend(stream.chunks);
                    let response_time = end.since(start);
                    let bytes = kept.iter().map(|c| c.batch.byte_size()).sum();
                    let batches = kept.into_iter().map(|c| c.batch).collect();
                    return Ok((
                        WrapperResult {
                            batches,
                            response_time,
                            bytes,
                        },
                        alt_server,
                    ));
                }
                Ok(stream) => {
                    // The replica died mid-remainder too: keep its chunks,
                    // advance the cursor, and chain the reroute.
                    let StreamOutcome::Interrupted { at } = stream.outcome else {
                        unreachable!("complete streams are handled above");
                    };
                    if stream.delivered() > 0 {
                        sources.push((alt_server.clone(), cursor, stream.next_cursor()));
                    }
                    cursor = stream.next_cursor();
                    kept.extend(stream.chunks);
                    reason = "interrupt";
                    fault_ms = Some(at.as_millis());
                    now = at + probe;
                    self.defer_stall_event(
                        qid,
                        slot,
                        &alt_server,
                        "interrupt",
                        now,
                        start,
                        threshold_ms,
                        effects,
                    );
                    excluded.insert(alt_server.clone());
                    last_failed = alt_server;
                }
                Err(QccError::ServerUnavailable(_)) | Err(QccError::ServerFault { .. }) => {
                    // Dead on arrival (recorded by the middleware): try
                    // the next replica from the detection instant.
                    excluded.insert(alt_server.clone());
                    last_failed = alt_server;
                }
                Err(e) => return Err(e),
            }
        }
        // Out of replicas or attempts: surface the failure to the
        // whole-query retry loop, which bans the server and re-plans.
        self.obs.counter_inc("reroute_exhausted_total", &[]);
        Err(QccError::ServerUnavailable(last_failed))
    }

    /// The replica a cancelled fragment's remainder re-dispatches to: the
    /// cheapest alternate plan for the same slot, on a different unbanned
    /// server with token capacity, with the *same plan signature and SQL*
    /// (so the cursor protocol's chunk schedule lines up), within
    /// `reroute_band ×` the primary's estimate; when a replica catalog is
    /// attached the alternate must also be a registered sibling on every
    /// nickname the fragment scans (fail open for unregistered fragments,
    /// as compile does). Ties break by server id.
    fn pick_reroute_replica(
        &self,
        slot: usize,
        decomposed: &DecomposedQuery,
        primary: &FragmentCandidate,
        pool: &[GlobalCandidate],
        excluded: &BTreeSet<ServerId>,
    ) -> Option<FragmentCandidate> {
        let est = primary.effective_cost.total();
        let limit = if est > 0.0 {
            est * self.config.reroute_band.max(1.0)
        } else {
            f64::INFINITY
        };
        let empty: &[String] = &[];
        let nicknames = decomposed
            .fragments
            .get(slot)
            .map(|f| f.nicknames.as_slice())
            .unwrap_or(empty);
        let mut best: Option<&FragmentCandidate> = None;
        for cand in pool {
            let Some(alt) = cand.fragments.get(slot) else {
                continue;
            };
            if excluded.contains(&alt.plan.server)
                || alt.plan.signature != primary.plan.signature
                || alt.plan.sql != primary.plan.sql
                || alt.effective_cost.total() > limit
            {
                continue;
            }
            if let Some(admission) = &self.admission {
                if admission.capacity(&alt.plan.server) == 0 {
                    continue;
                }
            }
            if let Some(catalog) = &self.catalog {
                let sibling_ok = nicknames.iter().all(|nn| {
                    catalog.replicas(nn).is_empty()
                        || catalog
                            .siblings(nn, &primary.plan.server)
                            .contains(&alt.plan.server)
                });
                if !sibling_ok {
                    continue;
                }
            }
            let better = match best {
                None => true,
                Some(b) => match alt
                    .effective_cost
                    .total()
                    .total_cmp(&b.effective_cost.total())
                {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => alt.plan.server < b.plan.server,
                },
            };
            if better {
                best = Some(alt);
            }
        }
        best.cloned()
    }

    /// Accept a fully-completed stream into the merge: count it, journal
    /// the fragment span, and acknowledge it to the middleware — the only
    /// place streamed successes feed reliability and calibration.
    fn note_complete_stream(
        &self,
        qid: QueryId,
        cand: &FragmentCandidate,
        stream: &WrapperStream,
        start: SimTime,
        effects: &mut Deferred,
    ) {
        self.obs
            .counter_inc("fragments_total", &[("server", cand.plan.server.as_str())]);
        if self.obs.is_enabled() {
            let obs = self.obs.clone();
            let server = cand.plan.server.to_string();
            let signature = cand.plan.signature.clone();
            let ms = stream.response_time.as_millis();
            effects.defer(move || {
                obs.event(
                    start,
                    "fragment",
                    vec![
                        ("query", qid.0.into()),
                        ("server", server.into()),
                        ("signature", signature.into()),
                        ("ms", ms.into()),
                    ],
                );
            });
        }
        self.middleware.observe_fragment(
            qid,
            cand.fragment,
            &cand.plan,
            stream.response_time.as_millis(),
            start,
            effects,
        );
    }

    /// Journal a stall-detector cancellation.
    #[allow(clippy::too_many_arguments)]
    fn defer_stall_event(
        &self,
        qid: QueryId,
        slot: usize,
        server: &ServerId,
        reason: &'static str,
        cancel_at: SimTime,
        start: SimTime,
        threshold_ms: f64,
        effects: &mut Deferred,
    ) {
        self.obs.counter_inc(
            "fragment_stalls_total",
            &[("server", server.as_str()), ("reason", reason)],
        );
        if self.obs.is_enabled() {
            let obs = self.obs.clone();
            let server = server.to_string();
            let elapsed_ms = cancel_at.since(start).as_millis();
            let finite_threshold = threshold_ms.is_finite().then_some(threshold_ms);
            effects.defer(move || {
                let mut fields: Vec<(&'static str, qcc_common::FieldValue)> = vec![
                    ("query", qid.0.into()),
                    ("fragment", slot.into()),
                    ("server", server.into()),
                    ("reason", reason.into()),
                    ("elapsed_ms", elapsed_ms.into()),
                ];
                if let Some(t) = finite_threshold {
                    fields.push(("threshold_ms", t.into()));
                }
                obs.event(
                    cancel_at,
                    qcc_common::obs::reroute_events::FRAGMENT_STALL,
                    fields,
                );
            });
        }
    }

    /// Count and journal a suppressed duplicate slot result.
    fn defer_suppression(
        &self,
        qid: QueryId,
        slot: usize,
        winner: &ServerId,
        suppressed: &ServerId,
        start: SimTime,
        effects: &mut Deferred,
    ) {
        self.obs
            .counter_inc("hedge_duplicates_suppressed_total", &[]);
        if self.obs.is_enabled() {
            let obs = self.obs.clone();
            let winner = winner.to_string();
            let suppressed = suppressed.to_string();
            effects.defer(move || {
                obs.event(
                    start,
                    "hedge_result",
                    vec![
                        ("query", qid.0.into()),
                        ("fragment", slot.into()),
                        ("winner", winner.into()),
                        ("suppressed", suppressed.into()),
                    ],
                );
            });
        }
    }
}

/// A completed stream's chunks as a call-and-wait style result.
fn stream_result(stream: WrapperStream) -> WrapperResult {
    WrapperResult {
        bytes: stream.bytes,
        response_time: stream.response_time,
        batches: stream.chunks.into_iter().map(|c| c.batch).collect(),
    }
}

/// Comma-joined server names (sets iterate sorted, so this is stable).
fn join_servers(set: &BTreeSet<ServerId>) -> String {
    set.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(",")
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("nicknames", &self.nicknames.names())
            .field("wrappers", &self.wrappers.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::PassthroughMiddleware;
    use qcc_common::{Column, DataType, FieldValue, Schema, SimTime, Value};
    use qcc_netsim::{Link, Network};
    use qcc_remote::{RemoteServer, ServerProfile};
    use qcc_wrapper::RelationalWrapper;

    /// Two servers: S1 hosts accounts+branches, S2 hosts a replica of
    /// branches only.
    fn setup() -> Federation {
        let accounts_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("balance", DataType::Float),
            Column::new("branch_id", DataType::Int),
        ]);
        let branches_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Str),
        ]);

        let mut accounts = Table::new("accounts", accounts_schema.clone());
        for i in 0..500i64 {
            accounts
                .insert(Row::new(vec![
                    Value::Int(i),
                    Value::Float((i % 100) as f64),
                    Value::Int(i % 10),
                ]))
                .unwrap();
        }
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..10i64 {
            branches
                .insert(Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("city{i}")),
                ]))
                .unwrap();
        }

        let mut cat1 = Catalog::new();
        cat1.register(accounts.clone());
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches.clone());

        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);

        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);

        let mut nicknames = NicknameCatalog::new();
        nicknames.define("accounts", accounts_schema);
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();

        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));
        fed
    }

    #[test]
    fn single_source_query_round_trips() {
        let fed = setup();
        let out = fed
            .submit("SELECT COUNT(*) FROM accounts WHERE balance > 50.0")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(0), &Value::Int(245));
        assert!(out.response_ms > 0.0);
        assert_eq!(fed.patroller().len(), 1);
    }

    #[test]
    fn colocated_join_pushes_to_s1() {
        let fed = setup();
        let out = fed
            .submit(
                "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
                 ON a.branch_id = b.id GROUP BY b.city ORDER BY b.city",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 10);
        assert_eq!(out.rows[0].get(1), &Value::Int(50));
        assert!(out.servers.contains(&ServerId::new("S1")));
        assert_eq!(out.servers.len(), 1, "join pushed to the coherent host");
    }

    #[test]
    fn replica_choice_exists_for_replicated_nickname() {
        let fed = setup();
        let (_, candidates) = fed.explain_global("SELECT COUNT(*) FROM branches").unwrap();
        let servers: BTreeSet<String> = candidates
            .iter()
            .map(|c| c.server_set().iter().next().unwrap().to_string())
            .collect();
        assert!(servers.contains("S1") && servers.contains("S2"));
    }

    #[test]
    fn explain_table_records_winner() {
        let fed = setup();
        fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(fed.explain_table().len(), 1);
    }

    #[test]
    fn failure_reroutes_to_replica() {
        // Build a setup where we keep direct handles to the servers.
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..10i64 {
            branches.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(&s1),
            Arc::clone(&net),
        )));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));

        // S1 goes down *after compile time* is hard to time here; instead
        // take it down for the whole run — compile skips it, S2 serves.
        s1.availability()
            .add_outage(SimTime::ZERO, SimTime::from_millis(1e12));
        let out = fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(out.rows[0].get(0), &Value::Int(10));
        assert!(out.servers.contains(&ServerId::new("S2")));
    }

    /// Two servers, each holding a full replica of a 5000-row `branches`
    /// table (multi-chunk at BATCH_ROWS=1024), journal enabled, streaming
    /// adaptivity at the given `stall_factor`.
    fn streaming_fixture(stall_factor: f64) -> (Federation, Arc<RemoteServer>) {
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..5000i64 {
            branches.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig {
                stall_factor,
                ..FederationConfig::default()
            },
        );
        fed.set_obs(Obs::new());
        fed.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(&s1),
            Arc::clone(&net),
        )));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));
        (fed, s1)
    }

    fn sorted_ids(rows: &[Row]) -> Vec<i64> {
        let mut ids: Vec<i64> = rows
            .iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                v => panic!("unexpected value {v:?}"),
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn streaming_clean_path_matches_call_and_wait_exactly() {
        // With no stalls and no faults the streamed path must reproduce
        // the call-and-wait outcome bit for bit (same rows, same floats).
        let (off, _) = streaming_fixture(0.0);
        let (on, _) = streaming_fixture(1e6);
        let a = off.submit("SELECT id FROM branches").unwrap();
        let b = on.submit("SELECT id FROM branches").unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.response_ms.to_bits(), b.response_ms.to_bits());
        assert_eq!(a.fragment_times, b.fragment_times);
    }

    #[test]
    fn midquery_interrupt_reroutes_remainder_without_duplicates() {
        // Dry run on a healthy fleet to learn when the fragment executes
        // and how long it takes (all virtual time, fully deterministic).
        let (dry, _) = streaming_fixture(1e6);
        dry.submit("SELECT id FROM branches").unwrap();
        let frag = &dry.obs().events_of("fragment")[0];
        let t0 = frag.at.as_millis();
        let Some(FieldValue::F64(ms)) = frag.field("ms") else {
            panic!("fragment event lacks ms");
        };

        // Fresh identical world where the serving replica crashes 30% of
        // the way into the fragment: the stream is cut mid-service and the
        // remainder must resume on the sibling at the cursor.
        let (fed, s1) = streaming_fixture(1e6);
        s1.availability().add_outage(
            SimTime::from_millis(t0 + 0.3 * ms),
            SimTime::from_millis(1e12),
        );
        let out = fed.submit("SELECT id FROM branches").unwrap();
        assert_eq!(
            sorted_ids(&out.rows),
            (0..5000).collect::<Vec<_>>(),
            "every row exactly once: no duplicates, no loss"
        );
        let obs = fed.obs();
        assert_eq!(obs.events_of("fragment_stall").len(), 1);
        let stall = &obs.events_of("fragment_stall")[0];
        assert_eq!(stall.str_field("reason"), Some("interrupt"));
        assert_eq!(obs.events_of("reroute_dispatch").len(), 1);
        assert_eq!(obs.events_of("fragment_resume").len(), 1);
        let stream = &obs.events_of("fragment_stream")[0];
        let sources = stream.str_field("sources").unwrap();
        assert!(
            sources.starts_with("S1:0..") && sources.contains("+S2:"),
            "stitched provenance, got {sources}"
        );
        assert_eq!(out.fragment_times[0].0, ServerId::new("S2"));
        assert_eq!(
            obs.counter_value("fragment_reroutes_total", &[("server", "S2")]),
            1
        );
        // The interrupt was detected mid-query, not burned as a whole-query
        // retry.
        assert_eq!(obs.counter_value("retries_total", &[]), 0);
    }

    #[test]
    fn stalled_fragment_cancels_and_reroutes_to_fast_replica() {
        // S1 is crushed by background load (the estimate is load-blind,
        // so its stream overruns stall_factor × estimate); S2 idles. The
        // detector must cancel S1 at the threshold and finish on S2.
        let (fed, s1) = streaming_fixture(3.0);
        s1.load().set_background(LoadProfile::Constant(0.95));
        let out = fed.submit("SELECT id FROM branches").unwrap();
        assert_eq!(sorted_ids(&out.rows), (0..5000).collect::<Vec<_>>());
        let obs = fed.obs();
        let stall = &obs.events_of("fragment_stall")[0];
        assert_eq!(stall.str_field("reason"), Some("slow"));
        assert_eq!(obs.events_of("reroute_dispatch").len(), 1);
        assert_eq!(out.fragment_times[0].0, ServerId::new("S2"));
        // A slow-cancel feeds the reliability penalty hook, not a retry.
        assert_eq!(obs.counter_value("retries_total", &[]), 0);
    }

    #[test]
    fn no_viable_plan_when_all_sources_down() {
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut cat = Catalog::new();
        cat.register(Table::new("branches", branches_schema.clone()));
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat);
        s1.availability()
            .add_outage(SimTime::ZERO, SimTime::from_millis(1e12));
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::new(net))));
        let err = fed.submit("SELECT COUNT(*) FROM branches").unwrap_err();
        assert!(matches!(err, QccError::NoViablePlan(_)), "{err}");
        assert_eq!(
            fed.patroller().log()[0].status,
            crate::patroller::QueryStatus::Failed(err.to_string())
        );
    }

    #[test]
    fn clock_advances_with_execution() {
        let fed = setup();
        let before = fed.clock().now();
        fed.submit("SELECT * FROM accounts WHERE id < 100").unwrap();
        assert!(fed.clock().now() > before);
    }

    #[test]
    fn cross_source_merge_join_correct() {
        // Force a split: accounts only on S1, branches only on S2.
        let accounts_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("branch_id", DataType::Int),
        ]);
        let branches_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Str),
        ]);
        let mut accounts = Table::new("accounts", accounts_schema.clone());
        for i in 0..100i64 {
            accounts
                .insert(Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..5i64 {
            branches
                .insert(Row::new(vec![Value::Int(i), Value::Str(format!("c{i}"))]))
                .unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(accounts);
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("accounts", accounts_schema);
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.set_obs(Obs::new());
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));

        let out = fed
            .submit(
                "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
                 ON a.branch_id = b.id GROUP BY b.city ORDER BY b.city",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 5);
        for r in &out.rows {
            assert_eq!(r.get(1), &Value::Int(20));
        }
        assert_eq!(out.servers.len(), 2, "both sources touched");
        assert_eq!(out.fragment_times.len(), 2);
        // A cross-source split is the one shape that exercises the local
        // merge, so this is where the "merge" journal event is pinned.
        let merges = fed.obs().events_of("merge");
        assert_eq!(merges.len(), 1);
        assert!(merges[0].field("ms").is_some());
        assert_eq!(fed.obs().events_of("fragment").len(), 2);
    }

    #[test]
    fn pressured_fragment_hedges_to_replica_and_suppresses_duplicate() {
        let mut fed = setup();
        fed.set_obs(Obs::new());
        // A slack factor this large marks every fragment of a
        // finite-deadline query as pressured, so the replicated nickname
        // must hedge to its second host.
        let admission = Arc::new(AdmissionController::new(qcc_admission::AdmissionConfig {
            exec_deadline_ms: 50.0,
            hedge_slack_factor: 1_000_000.0,
            hedge_band: 10.0,
            ..Default::default()
        }));
        admission.set_capacity(&ServerId::new("S1"), 2, SimTime::ZERO);
        admission.set_capacity(&ServerId::new("S2"), 2, SimTime::ZERO);
        fed.set_admission(Arc::clone(&admission));

        let out = fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(
            out.rows[0].get(0),
            &Value::Int(10),
            "one merged result; the losing replica's rows are suppressed"
        );
        let hedges = fed.obs().events_of("hedge");
        assert_eq!(hedges.len(), 1, "single-fragment plan hedges exactly once");
        assert!(hedges[0].field("primary").is_some());
        assert_ne!(
            hedges[0].field("primary"),
            hedges[0].field("hedge"),
            "the hedge replica must sit on a different server"
        );
        let results = fed.obs().events_of("hedge_result");
        assert_eq!(results.len(), 1);
        assert!(results[0].field("winner").is_some());
        assert_eq!(
            fed.obs()
                .counter_value("hedge_duplicates_suppressed_total", &[]),
            1,
            "healthy world: both replicas answer, exactly one duplicate suppressed"
        );
    }
}
