//! The integrator's orchestration: compile, globally optimize, execute
//! remotely, merge locally.

use crate::decompose::{decompose, frag_table, DecomposedQuery, MergeSpec};
use crate::middleware::{Deferred, FragmentCandidate, GlobalCandidate, Middleware};
use crate::nickname::NicknameCatalog;
use crate::patroller::QueryPatroller;
use parking_lot::Mutex;
use qcc_admission::AdmissionController;
use qcc_catalog::ReplicaCatalog;
use qcc_common::{
    scatter_indexed, Cost, FragmentId, Obs, QccError, QueryId, Result, Row, ServerId, SimDuration,
};
use qcc_engine::Engine;
use qcc_netsim::{slowdown, LoadProfile, ServerLoad, SimClock};
use qcc_storage::{Catalog, ColumnStats, Table, TableStats};
use qcc_wrapper::Wrapper;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Integrator configuration.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Integrator CPU speed (work units per virtual ms).
    pub ii_speed: f64,
    /// Cap on enumerated global plan candidates per query.
    pub max_global_candidates: usize,
    /// How many times a query is re-routed after a fragment failure before
    /// giving up.
    pub retry_limit: usize,
    /// Worker-pool width for scatter-gather fan-out (compile-time EXPLAIN
    /// dispatch, fragment execution, `submit_batch`). Results are
    /// byte-identical for any value ≥ 1; this only trades wall-clock time
    /// (see DESIGN.md "Threading model").
    pub threads: usize,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            ii_speed: 1.0,
            max_global_candidates: 64,
            retry_limit: 2,
            threads: qcc_common::default_threads(),
        }
    }
}

/// The outcome of a federated query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Patroller-assigned id.
    pub id: QueryId,
    /// Result rows.
    pub rows: Vec<Row>,
    /// End-to-end response time in virtual ms (submit → merged result).
    pub response_ms: f64,
    /// Signature of the executed global plan.
    pub chosen_signature: String,
    /// Servers the executed plan touched.
    pub servers: BTreeSet<ServerId>,
    /// Observed per-fragment response times `(server, ms)`.
    pub fragment_times: Vec<(ServerId, f64)>,
    /// The estimated total cost of the chosen plan (for calibration
    /// inspection in tests and experiments).
    pub estimated_cost: f64,
}

/// A compiled federated query: its decomposition plus the enumerated
/// global candidates, costed and sorted cheapest-first.
pub type CompiledGlobal = (DecomposedQuery, Vec<GlobalCandidate>);

/// Observed `(server, response ms)` pairs, one per executed fragment.
pub type FragmentTimes = Vec<(ServerId, f64)>;

/// The federated information integrator.
pub struct Federation {
    nicknames: NicknameCatalog,
    wrappers: BTreeMap<ServerId, Arc<dyn Wrapper>>,
    middleware: Arc<dyn Middleware>,
    patroller: QueryPatroller,
    clock: SimClock,
    ii_load: ServerLoad,
    config: FederationConfig,
    /// The explain table: query template → winning global plan signature
    /// (the paper stores the selected plan and its estimated costs here).
    explain_table: Mutex<BTreeMap<String, String>>,
    /// Observability handle (disabled unless [`Federation::set_obs`] is
    /// called). Worker-side journal emissions ride the `Deferred` buffers
    /// so snapshots stay thread-count independent.
    obs: Obs,
    /// Admission controller (absent unless [`Federation::set_admission`]
    /// is called). `run` consults its *frozen* per-server token capacities
    /// at plan-selection time — the coordinator refreshes them only
    /// between batches, so every query in a batch gates against the same
    /// snapshot regardless of thread count.
    admission: Option<Arc<AdmissionController>>,
    /// Replica catalog (absent unless [`Federation::set_catalog`] is
    /// called). When attached, `compile` runs source selection against it
    /// *before* the EXPLAIN fan-out, pruning dominated replicas so the
    /// fan-out stays O(relevant replicas) instead of O(servers).
    catalog: Option<Arc<ReplicaCatalog>>,
}

impl Federation {
    /// Build an integrator.
    pub fn new(
        nicknames: NicknameCatalog,
        clock: SimClock,
        middleware: Arc<dyn Middleware>,
        config: FederationConfig,
    ) -> Self {
        Federation {
            nicknames,
            wrappers: BTreeMap::new(),
            middleware,
            patroller: QueryPatroller::new(),
            clock,
            ii_load: ServerLoad::new(LoadProfile::Constant(0.0), 0.02),
            config,
            explain_table: Mutex::new(BTreeMap::new()),
            obs: Obs::off(),
            admission: None,
            catalog: None,
        }
    }

    /// Attach an admission controller; `run` will gate candidate selection
    /// on its token capacities and enforce the execution deadline.
    pub fn set_admission(&mut self, admission: Arc<AdmissionController>) {
        self.admission = Some(admission);
    }

    /// The attached admission controller, if any.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// Attach a replica catalog; `compile` will prune each fragment's
    /// candidate servers through [`ReplicaCatalog::select_sources`] before
    /// dispatching the EXPLAIN fan-out.
    pub fn set_catalog(&mut self, catalog: Arc<ReplicaCatalog>) {
        self.catalog = Some(catalog);
    }

    /// The attached replica catalog, if any.
    pub fn catalog(&self) -> Option<&Arc<ReplicaCatalog>> {
        self.catalog.as_ref()
    }

    /// Attach an observability handle; the patroller journals through the
    /// same one.
    pub fn set_obs(&mut self, obs: Obs) {
        self.patroller.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Register a wrapper for a server.
    pub fn add_wrapper(&mut self, wrapper: Arc<dyn Wrapper>) {
        self.wrappers.insert(wrapper.server_id().clone(), wrapper);
    }

    /// The nickname catalog.
    pub fn nicknames(&self) -> &NicknameCatalog {
        &self.nicknames
    }

    /// The query patroller (its log is the QCC's runtime feed).
    pub fn patroller(&self) -> &QueryPatroller {
        &self.patroller
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The integrator configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The integrator's own load model (§3.2: II load affects merge cost).
    pub fn ii_load(&self) -> &ServerLoad {
        &self.ii_load
    }

    /// The wrapper registered for `server`.
    pub fn wrapper(&self, server: &ServerId) -> Result<&Arc<dyn Wrapper>> {
        self.wrappers
            .get(server)
            .ok_or_else(|| QccError::Config(format!("no wrapper for server {server}")))
    }

    /// Snapshot of the explain table (template → winning plan signature).
    pub fn explain_table(&self) -> BTreeMap<String, String> {
        self.explain_table.lock().clone()
    }

    /// Compile a query: decompose and enumerate global candidates with
    /// (possibly calibrated) costs. Advances the clock by the slowest
    /// EXPLAIN round trip (they are dispatched concurrently). Does not
    /// execute.
    pub fn explain_global(&self, sql: &str) -> Result<CompiledGlobal> {
        let qid = QueryId(u64::MAX); // sentinel: not a logged submission
        let mut effects = Deferred::new();
        let compiled = self.compile(qid, sql, &self.clock, &mut effects);
        effects.apply();
        compiled
    }

    fn compile(
        &self,
        qid: QueryId,
        sql: &str,
        clock: &SimClock,
        effects: &mut Deferred,
    ) -> Result<CompiledGlobal> {
        let decomposed = decompose(sql, &self.nicknames)?;

        // Source selection: when a replica catalog is attached, prune each
        // fragment's candidate set *before* the EXPLAIN fan-out — dominated
        // replicas (strictly worse calibrated cost AND reliability band
        // than a surviving sibling) never win the cost race, so consulting
        // them is pure network waste. Selection preserves candidate order
        // and fails open on unregistered fragments, so a world without a
        // catalog (or with an empty one) compiles exactly as before.
        let selected: Vec<Vec<ServerId>> = decomposed
            .fragments
            .iter()
            .map(|frag| match &self.catalog {
                Some(catalog) => catalog.select_sources(&frag.nicknames, &frag.candidate_servers),
                None => frag.candidate_servers.clone(),
            })
            .collect();
        if self.catalog.is_some() {
            let full: usize = decomposed
                .fragments
                .iter()
                .map(|f| f.candidate_servers.len())
                .sum();
            let kept: usize = selected.iter().map(|s| s.len()).sum();
            if kept < full {
                // Commutative counter: safe inline on worker threads (L9).
                self.obs
                    .counter_add("catalog_candidates_pruned_total", &[], (full - kept) as u64);
            }
            if self.obs.is_enabled() {
                let obs = self.obs.clone();
                let at = clock.now();
                effects.defer(move || {
                    // Per-query candidate-set-size distribution (post-prune).
                    obs.observe("catalog_candidate_set_size", &[], kept as f64);
                    if kept < full {
                        let mut fields: Vec<(&'static str, qcc_common::FieldValue)> = Vec::new();
                        if qid.0 != u64::MAX {
                            fields.push(("query", qid.0.into()));
                        }
                        fields.extend([("full", full.into()), ("kept", kept.into())]);
                        obs.event(at, "catalog_prune", fields);
                    }
                });
            }
        }

        // Scatter: every (fragment, candidate server) EXPLAIN is
        // dispatched concurrently at one snapshot — the MW fans the
        // requests out, so virtual time advances by the slowest round
        // trip, not the sum. Results gather in (fragment, server) task
        // order, making the outcome independent of the thread count.
        struct ExplainTask<'a> {
            slot: usize,
            fid: FragmentId,
            wrapper: &'a Arc<dyn Wrapper>,
            frag_sql: String,
        }
        let mut tasks: Vec<ExplainTask<'_>> = Vec::new();
        for (slot, frag) in decomposed.fragments.iter().enumerate() {
            let fid = FragmentId::new(qid, frag.index);
            for server in &selected[slot] {
                let Ok(wrapper) = self.wrapper(server) else {
                    continue;
                };
                tasks.push(ExplainTask {
                    slot,
                    fid,
                    wrapper,
                    frag_sql: frag.sql_for_server(&self.nicknames, server)?,
                });
            }
        }
        let at = clock.now();
        let outcomes = scatter_indexed(tasks.len(), self.config.threads, |i| {
            let t = &tasks[i];
            let mut local = Deferred::new();
            let result = self.middleware.plan_fragment(
                t.wrapper.as_ref(),
                qid,
                t.fid,
                &t.frag_sql,
                at,
                &mut local,
            );
            (result, local)
        });

        // Gather barrier: merge deferred effects and bucket candidates in
        // task order; one clock advance for the whole EXPLAIN fan-out.
        let mut per_fragment: Vec<Vec<FragmentCandidate>> =
            decomposed.fragments.iter().map(|_| Vec::new()).collect();
        let mut slowest = SimDuration::ZERO;
        let mut fatal = None;
        for (task, (result, local)) in tasks.iter().zip(outcomes) {
            effects.merge(local);
            match result {
                Ok((plans, took)) => {
                    slowest = slowest.max(took);
                    per_fragment[task.slot].extend(plans);
                }
                Err(QccError::ServerUnavailable(_)) | Err(QccError::ServerFault { .. }) => {
                    // A down server contributes no candidates; the MW has
                    // recorded the failure.
                }
                Err(e) => {
                    if fatal.is_none() {
                        fatal = Some(e);
                    }
                }
            }
        }
        clock.advance(slowest);
        if let Some(e) = fatal {
            return Err(e);
        }

        for (slot, frag) in decomposed.fragments.iter().enumerate() {
            let candidates = &mut per_fragment[slot];
            if candidates.is_empty() {
                return Err(QccError::NoViablePlan(format!(
                    "no server could plan fragment {} ({})",
                    frag.index, frag.stmt
                )));
            }
            // Drop candidates the calibrator pinned to infinity (downed
            // servers), unless nothing else remains.
            let finite: Vec<FragmentCandidate> = candidates
                .iter()
                .filter(|c| !c.effective_cost.is_infinite())
                .cloned()
                .collect();
            if !finite.is_empty() {
                *candidates = finite;
            }
            // Keep the cheapest plans first so candidate capping keeps the
            // most promising combinations.
            candidates.sort_by(|a, b| {
                a.effective_cost
                    .total()
                    .total_cmp(&b.effective_cost.total())
            });
        }

        // Capped Cartesian product, enumerated as index vectors in
        // lexicographic order (rightmost fragment varies fastest — the
        // same first-`cap` set the old combo-cloning loop produced);
        // only the surviving combinations materialize candidate clones.
        let cap = self.config.max_global_candidates;
        let mut combos: Vec<Vec<FragmentCandidate>> = Vec::new();
        let mut odometer = vec![0usize; per_fragment.len()];
        'enumerate: while combos.len() < cap {
            combos.push(
                odometer
                    .iter()
                    .zip(&per_fragment)
                    .map(|(&i, cands)| cands[i].clone())
                    .collect(),
            );
            let mut pos = per_fragment.len();
            loop {
                if pos == 0 {
                    break 'enumerate; // every combination enumerated
                }
                pos -= 1;
                odometer[pos] += 1;
                if odometer[pos] < per_fragment[pos].len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }

        let mut candidates: Vec<GlobalCandidate> = combos
            .into_iter()
            .map(|fragments| {
                let integration = self.estimate_integration(&decomposed, &fragments);
                GlobalCandidate {
                    integration_cost: self.middleware.calibrate_integration(integration),
                    fragments,
                }
            })
            .collect();
        candidates.sort_by(|a, b| a.total_cost().total_cmp(&b.total_cost()));

        // Compile span (covers the EXPLAIN fan-out): journaled via the
        // deferred buffer because compile runs on worker threads under
        // `submit_batch`.
        if self.obs.is_enabled() {
            let obs = self.obs.clone();
            let template = decomposed.template_signature.clone();
            let (explain_tasks, n_candidates) = (tasks.len(), candidates.len());
            let end = clock.now();
            effects.defer(move || {
                let mut fields: Vec<(&'static str, qcc_common::FieldValue)> = Vec::new();
                if qid.0 != u64::MAX {
                    fields.push(("query", qid.0.into()));
                }
                fields.extend([
                    ("template", template.into()),
                    ("explain_tasks", explain_tasks.into()),
                    ("candidates", n_candidates.into()),
                ]);
                obs.span("compile", at, end, fields);
            });
        }
        Ok((decomposed, candidates))
    }

    /// Estimated merge cost at the integrator for one fragment-candidate
    /// combination, using a virtual catalog whose table statistics come
    /// from the fragments' estimated cardinalities.
    fn estimate_integration(
        &self,
        decomposed: &DecomposedQuery,
        fragments: &[FragmentCandidate],
    ) -> Cost {
        let MergeSpec::Merge { stmt } = &decomposed.merge else {
            return Cost::ZERO;
        };
        let mut catalog = Catalog::new();
        for (i, frag) in decomposed.fragments.iter().enumerate() {
            let schema = frag.output_schema();
            let card = fragments
                .get(i)
                .map(|f| f.effective_cost.cardinality)
                .unwrap_or(1.0)
                .max(1.0) as u64;
            let columns = schema
                .columns()
                .iter()
                .map(|_| ColumnStats {
                    distinct: (card / 2).max(1),
                    ..ColumnStats::default()
                })
                .collect();
            let stats = TableStats::virtual_table(card, 8.0 * schema.len() as f64, columns);
            catalog.register_virtual(Table::new(frag_table(i), schema), stats);
        }
        let engine = Engine::new(catalog);
        match engine.explain(&stmt.to_string()) {
            Ok(plans) if !plans.is_empty() => plans[0].cost.calibrate(1.0 / self.config.ii_speed),
            _ => Cost::fixed(1.0),
        }
    }

    /// Submit a federated query: compile, choose a global plan, execute
    /// the fragments remotely (in parallel), merge locally, and log it all.
    pub fn submit(&self, sql: &str) -> Result<QueryOutcome> {
        let submitted = self.clock.now();
        let qid = self.patroller.record_submit(sql, submitted);
        let mut effects = Deferred::new();
        let result = self.run(qid, sql, &self.clock, &mut effects, None);
        effects.apply();
        match result {
            Ok(outcome) => {
                self.patroller.record_complete(qid, self.clock.now());
                Ok(outcome)
            }
            Err(e) => {
                self.patroller
                    .record_failure(qid, self.clock.now(), e.to_string());
                Err(e)
            }
        }
    }

    /// Submit a batch of federated queries that logically start at the
    /// same instant, spread across the scatter worker pool.
    ///
    /// Each query runs against a private clock forked from the shared
    /// snapshot ([`SimClock::at`]); the coordinator gathers in
    /// submission-index order, applying each query's deferred side
    /// effects and patroller completion before the next query's, then
    /// advances the shared clock once — to the latest per-query end time.
    /// Every query in the batch therefore routes against the same frozen
    /// adaptive state (load balancer, calibration, reliability):
    /// adaptation happens at batch granularity, and the outcomes are
    /// byte-identical for any `threads` setting, including 1.
    pub fn submit_batch(&self, sqls: &[String]) -> Vec<Result<QueryOutcome>> {
        self.submit_batch_with_budgets(sqls, &[])
    }

    /// [`Federation::submit_batch`] with an optional remaining deadline
    /// budget per query (virtual ms from dispatch, as handed out by the
    /// admission queue). A query's effective execution deadline is the
    /// smaller of the configured `exec_deadline_ms` and its budget, so a
    /// ticket that spent most of its budget queueing gets a proportionally
    /// tighter retry/hedge horizon. `budgets` may be empty (no budgets) or
    /// must match `sqls` in length; `None` entries mean "no budget".
    pub fn submit_batch_with_budgets(
        &self,
        sqls: &[String],
        budgets: &[Option<f64>],
    ) -> Vec<Result<QueryOutcome>> {
        let t0 = self.clock.now();
        let qids: Vec<QueryId> = sqls
            .iter()
            .map(|sql| self.patroller.record_submit(sql, t0))
            .collect();
        let outcomes = scatter_indexed(sqls.len(), self.config.threads, |i| {
            let clock = SimClock::at(t0);
            let mut local = Deferred::new();
            let budget = budgets.get(i).copied().flatten();
            let result = self.run(qids[i], &sqls[i], &clock, &mut local, budget);
            (result, local, clock.now())
        });
        let mut latest = t0;
        let mut out = Vec::with_capacity(sqls.len());
        for (i, (result, local, end)) in outcomes.into_iter().enumerate() {
            local.apply();
            match &result {
                Ok(_) => self.patroller.record_complete(qids[i], end),
                Err(e) => self.patroller.record_failure(qids[i], end, e.to_string()),
            }
            if end > latest {
                latest = end;
            }
            out.push(result);
        }
        self.clock.advance_to(latest);
        out
    }

    fn run(
        &self,
        qid: QueryId,
        sql: &str,
        clock: &SimClock,
        effects: &mut Deferred,
        budget_ms: Option<f64>,
    ) -> Result<QueryOutcome> {
        let submitted = clock.now();
        let (decomposed, mut candidates) = self.compile(qid, sql, clock, effects)?;
        if candidates.is_empty() {
            return Err(QccError::NoViablePlan("no global candidates".into()));
        }
        let mut banned: BTreeSet<ServerId> = BTreeSet::new();
        // Effective execution deadline: the configured per-dispatch limit,
        // tightened by whatever remains of the ticket's arrival-relative
        // budget. A ticket dispatched with (almost) nothing left keeps a
        // hair of budget so the deadline machinery stays armed rather than
        // reading 0.0 as "disabled".
        let configured = self
            .admission
            .as_ref()
            .map(|a| a.config().exec_deadline_ms)
            .unwrap_or(0.0);
        let exec_deadline_ms = match budget_ms {
            Some(budget) => {
                let budget = budget.max(0.001);
                if configured > 0.0 {
                    configured.min(budget)
                } else {
                    budget
                }
            }
            None => configured,
        };

        // The retry *budget*: up to `retry_limit` re-routes, but the
        // execution deadline can forfeit whatever budget remains.
        for attempt in 0..=self.config.retry_limit {
            if attempt > 0 && exec_deadline_ms > 0.0 {
                let elapsed = clock.now().since(submitted).as_millis();
                if elapsed > exec_deadline_ms {
                    self.obs
                        .counter_inc("deadline_exceeded_total", &[("stage", "retry")]);
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let at = clock.now();
                        effects.defer(move || {
                            obs.event(
                                at,
                                "deadline_exceeded",
                                vec![
                                    ("query", qid.0.into()),
                                    ("stage", "retry".into()),
                                    ("attempt", (attempt as u64).into()),
                                    ("elapsed_ms", elapsed.into()),
                                    ("deadline_ms", exec_deadline_ms.into()),
                                ],
                            );
                        });
                    }
                    return Err(QccError::DeadlineExceeded(format!(
                        "retry budget forfeited after {elapsed:.3}ms (deadline {exec_deadline_ms}ms)"
                    )));
                }
            }
            // Filter candidates avoiding servers that already failed.
            let viable: Vec<&GlobalCandidate> = candidates
                .iter()
                .filter(|c| c.server_set().is_disjoint(&banned))
                .collect();
            if viable.is_empty() {
                break;
            }
            // Token gate: a plan is admissible only if every server it
            // touches has concurrency tokens in the frozen snapshot. A
            // nonempty blocked set means the router steered around a
            // token-exhausted server (a "token wait" — in virtual time the
            // wait materializes as a reroute, never a sleep).
            let (viable, blocked_count) = match &self.admission {
                Some(admission) => {
                    let (admissible, blocked): (Vec<&GlobalCandidate>, Vec<&GlobalCandidate>) =
                        viable.into_iter().partition(|c| {
                            c.server_set().iter().all(|s| admission.capacity(s) > 0)
                        });
                    (admissible, blocked.len())
                }
                None => (viable, 0),
            };
            if blocked_count > 0 {
                self.obs.counter_inc("token_waits_total", &[]);
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    let at = clock.now();
                    effects.defer(move || {
                        obs.event(
                            at,
                            "token_wait",
                            vec![
                                ("query", qid.0.into()),
                                ("attempt", (attempt as u64).into()),
                                ("blocked_candidates", blocked_count.into()),
                            ],
                        );
                    });
                }
            }
            if viable.is_empty() {
                // Every surviving plan needs a token-exhausted server:
                // shed before any fragment work rather than pile on.
                if let Some(admission) = &self.admission {
                    admission.note_shed("no_tokens");
                }
                return Err(QccError::Shed(
                    "no token-admissible global plan (all candidate servers exhausted)".into(),
                ));
            }
            let viable_owned: Vec<GlobalCandidate> = viable.into_iter().cloned().collect();
            let idx = self
                .middleware
                .choose_global(&decomposed.template_signature, &viable_owned, effects)
                .min(viable_owned.len() - 1);
            let chosen = &viable_owned[idx];
            // Inline (not deferred) by design: within one batch every
            // query sees the same frozen routing state, so same-template
            // queries write the same winner — the table's contents are
            // deterministic even though the write order is not.
            self.explain_table
                .lock()
                .insert(decomposed.template_signature.clone(), chosen.signature());

            // Hedged dispatch: when the remaining deadline budget is
            // nearly exhausted relative to a fragment's calibrated
            // estimate, line up a second within-band replica for that
            // fragment. Both run concurrently; the faster result wins and
            // the loser is suppressed at the merge.
            let hedges = self.plan_hedges(chosen, &candidates, &banned, exec_deadline_ms, {
                clock.now().since(submitted).as_millis()
            });
            for (slot, alt) in &hedges {
                self.obs
                    .counter_inc("hedges_total", &[("server", alt.plan.server.as_str())]);
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    let at = clock.now();
                    let primary = chosen.fragments[*slot].plan.server.to_string();
                    let hedge = alt.plan.server.to_string();
                    let est = chosen.fragments[*slot].effective_cost.total();
                    let slot = *slot;
                    effects.defer(move || {
                        obs.event(
                            at,
                            "hedge",
                            vec![
                                ("query", qid.0.into()),
                                ("fragment", slot.into()),
                                ("primary", primary.into()),
                                ("hedge", hedge.into()),
                                ("est_ms", est.into()),
                            ],
                        );
                    });
                }
            }

            match self.execute_global(qid, &decomposed, chosen, &hedges, clock, effects) {
                Ok((rows, fragment_times)) => {
                    let response_ms = clock.now().since(submitted).as_millis();
                    if exec_deadline_ms > 0.0 && response_ms > exec_deadline_ms {
                        // Completed, but late: the result still counts, the
                        // goodput accounting does not.
                        self.obs.counter_inc("deadline_misses_total", &[]);
                        if self.obs.is_enabled() {
                            let obs = self.obs.clone();
                            let at = clock.now();
                            effects.defer(move || {
                                obs.event(
                                    at,
                                    "deadline_exceeded",
                                    vec![
                                        ("query", qid.0.into()),
                                        ("stage", "completion".into()),
                                        ("elapsed_ms", response_ms.into()),
                                        ("deadline_ms", exec_deadline_ms.into()),
                                    ],
                                );
                            });
                        }
                    }
                    self.middleware.observe_query(
                        qid,
                        &decomposed.template_signature,
                        chosen.total_cost(),
                        response_ms,
                        effects,
                    );
                    // A success after at least one ban is a reroute: the
                    // retry loop found a plan avoiding the failed servers.
                    if self.obs.is_enabled() && !banned.is_empty() {
                        let obs = self.obs.clone();
                        let at = clock.now();
                        let servers = join_servers(&chosen.server_set());
                        effects.defer(move || {
                            obs.event(
                                at,
                                "reroute",
                                vec![
                                    ("query", qid.0.into()),
                                    ("attempt", (attempt as u64).into()),
                                    ("servers", servers.into()),
                                ],
                            );
                        });
                    }
                    return Ok(QueryOutcome {
                        id: qid,
                        rows,
                        response_ms,
                        chosen_signature: chosen.signature(),
                        servers: chosen.server_set(),
                        fragment_times,
                        estimated_cost: chosen.total_cost(),
                    });
                }
                Err(QccError::ServerUnavailable(s))
                | Err(QccError::ServerFault { server: s, .. }) => {
                    // Ban the failed server and re-route. The middleware
                    // has already recorded the failure (reliability input).
                    self.obs.counter_inc("retries_total", &[]);
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let at = clock.now();
                        let srv = s.to_string();
                        effects.defer(move || {
                            obs.event(
                                at,
                                "server_banned",
                                vec![
                                    ("query", qid.0.into()),
                                    ("server", srv.into()),
                                    ("attempt", (attempt as u64).into()),
                                ],
                            );
                        });
                    }
                    banned.insert(s);
                    candidates.retain(|c| c.server_set().is_disjoint(&banned));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(QccError::NoViablePlan(format!(
            "all retries exhausted; unavailable servers: {banned:?}"
        )))
    }

    /// Choose a hedge replica for every pressured fragment of `chosen`:
    /// one whose remaining deadline budget (`exec_deadline_ms` minus
    /// `elapsed_ms`) is below `hedge_slack_factor ×` its calibrated cost.
    /// The replica is the cheapest alternate plan for the same fragment
    /// slot from the enumerated candidate `pool` that sits on a different,
    /// unbanned server with token capacity, within `hedge_band ×` the
    /// primary's cost (ties broken by server id — fully deterministic
    /// against the frozen admission snapshot).
    fn plan_hedges(
        &self,
        chosen: &GlobalCandidate,
        pool: &[GlobalCandidate],
        banned: &BTreeSet<ServerId>,
        exec_deadline_ms: f64,
        elapsed_ms: f64,
    ) -> BTreeMap<usize, FragmentCandidate> {
        let mut hedges = BTreeMap::new();
        let Some(admission) = &self.admission else {
            return hedges;
        };
        let slack = admission.config().hedge_slack_factor;
        if slack <= 0.0 || exec_deadline_ms <= 0.0 {
            return hedges;
        }
        let remaining = exec_deadline_ms - elapsed_ms;
        let band = admission.config().hedge_band.max(1.0);
        for (slot, primary) in chosen.fragments.iter().enumerate() {
            let est = primary.effective_cost.total();
            if est <= 0.0 || remaining >= slack * est {
                continue;
            }
            let limit = est * band;
            let mut best: Option<&FragmentCandidate> = None;
            for cand in pool {
                let Some(alt) = cand.fragments.get(slot) else {
                    continue;
                };
                if alt.plan.server == primary.plan.server
                    || banned.contains(&alt.plan.server)
                    || admission.capacity(&alt.plan.server) == 0
                    || alt.effective_cost.total() > limit
                {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => match alt
                        .effective_cost
                        .total()
                        .total_cmp(&b.effective_cost.total())
                    {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => alt.plan.server < b.plan.server,
                    },
                };
                if better {
                    best = Some(alt);
                }
            }
            if let Some(alt) = best {
                hedges.insert(slot, alt.clone());
            }
        }
        hedges
    }

    /// Execute the fragments of a chosen global plan in parallel worker
    /// threads — every fragment (and every hedge replica) stamped with the
    /// shared `start` snapshot, results gathered in task-index order
    /// (primaries first, then hedges), one coordinator-side clock advance
    /// by the slowest *winning* fragment — then merge. Where a hedge ran,
    /// the faster success wins its slot (ties favour the primary), the
    /// loser's rows are suppressed at the merge, and a hedge that succeeds
    /// where its primary failed rescues the query without burning a retry.
    fn execute_global(
        &self,
        qid: QueryId,
        decomposed: &DecomposedQuery,
        chosen: &GlobalCandidate,
        hedges: &BTreeMap<usize, FragmentCandidate>,
        clock: &SimClock,
        effects: &mut Deferred,
    ) -> Result<(Vec<Row>, FragmentTimes)> {
        let start = clock.now();
        let n = chosen.fragments.len();
        let hedge_tasks: Vec<(usize, &FragmentCandidate)> =
            hedges.iter().map(|(slot, cand)| (*slot, cand)).collect();
        let task_candidate = |i: usize| -> &FragmentCandidate {
            if i < n {
                &chosen.fragments[i]
            } else {
                hedge_tasks[i - n].1
            }
        };
        let outcomes = scatter_indexed(n + hedge_tasks.len(), self.config.threads, |i| {
            let cand = task_candidate(i);
            let mut local = Deferred::new();
            let result = self.wrapper(&cand.plan.server).and_then(|wrapper| {
                self.middleware.execute_fragment(
                    wrapper.as_ref(),
                    qid,
                    cand.fragment,
                    &cand.plan,
                    start,
                    &mut local,
                )
            });
            (result, local)
        });

        // Gather barrier: every task ran, so every task's observations are
        // merged (in index order: primaries, then hedges) before the first
        // error — if any — is surfaced. Per slot the winner is the fastest
        // success among primary and hedge.
        let mut primary: Vec<Option<qcc_wrapper::WrapperResult>> = (0..n).map(|_| None).collect();
        let mut hedge: Vec<Option<qcc_wrapper::WrapperResult>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, QccError)> = None;
        for (i, (result, local)) in outcomes.into_iter().enumerate() {
            effects.merge(local);
            let cand = task_candidate(i);
            let slot = if i < n { i } else { hedge_tasks[i - n].0 };
            match result {
                Ok(result) => {
                    self.obs
                        .counter_inc("fragments_total", &[("server", cand.plan.server.as_str())]);
                    if self.obs.is_enabled() {
                        let obs = self.obs.clone();
                        let server = cand.plan.server.to_string();
                        let signature = cand.plan.signature.clone();
                        let ms = result.response_time.as_millis();
                        effects.defer(move || {
                            obs.event(
                                start,
                                "fragment",
                                vec![
                                    ("query", qid.0.into()),
                                    ("server", server.into()),
                                    ("signature", signature.into()),
                                    ("ms", ms.into()),
                                ],
                            );
                        });
                    }
                    if i < n {
                        primary[slot] = Some(result);
                    } else {
                        hedge[slot] = Some(result);
                    }
                }
                Err(e) => {
                    // A failed primary may still be rescued by its hedge;
                    // remember the earliest-slot primary error in case not.
                    let rank = if i < n { slot } else { n + slot };
                    if first_err.as_ref().map(|(r, _)| rank < *r).unwrap_or(true) {
                        first_err = Some((rank, e));
                    }
                }
            }
        }

        let mut results = Vec::with_capacity(n);
        let mut slowest = SimDuration::ZERO;
        let mut fragment_times = Vec::new();
        for slot in 0..n {
            let p = primary[slot].take();
            let h = hedge[slot].take();
            let had_both = p.is_some() && h.is_some();
            let (winner, hedged) = match (p, h) {
                (Some(p), Some(h)) => {
                    // Tie favours the primary: the hedge is insurance, not
                    // a reroute.
                    if h.response_time < p.response_time {
                        (h, true)
                    } else {
                        (p, false)
                    }
                }
                (Some(p), None) => (p, false),
                (None, Some(h)) => (h, true),
                (None, None) => {
                    let (_, e) = first_err.take().unwrap_or((
                        0,
                        QccError::Execution(format!("fragment {slot} produced no result")),
                    ));
                    return Err(e);
                }
            };
            let winner_server = if hedged {
                hedges[&slot].plan.server.clone()
            } else {
                chosen.fragments[slot].plan.server.clone()
            };
            if hedged {
                self.obs.counter_inc("hedge_wins_total", &[]);
            }
            if had_both {
                // Duplicate suppression: exactly one of the two results
                // feeds the merge; journal which replica was dropped.
                self.obs
                    .counter_inc("hedge_duplicates_suppressed_total", &[]);
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    let winner = winner_server.to_string();
                    let suppressed = if hedged {
                        chosen.fragments[slot].plan.server.to_string()
                    } else {
                        hedges[&slot].plan.server.to_string()
                    };
                    effects.defer(move || {
                        obs.event(
                            start,
                            "hedge_result",
                            vec![
                                ("query", qid.0.into()),
                                ("fragment", slot.into()),
                                ("winner", winner.into()),
                                ("suppressed", suppressed.into()),
                            ],
                        );
                    });
                }
            }
            slowest = slowest.max(winner.response_time);
            fragment_times.push((winner_server, winner.response_time.as_millis()));
            results.push(winner);
        }
        clock.advance(slowest);

        match &decomposed.merge {
            MergeSpec::Passthrough => {
                let rows = results
                    .into_iter()
                    .next()
                    .map(|r| r.rows())
                    .unwrap_or_default();
                Ok((rows, fragment_times))
            }
            MergeSpec::Merge { stmt } => {
                // Register the shipped fragment batches as temp tables —
                // adopting the columnar data without copying — and run the
                // merge with the real engine.
                let mut catalog = Catalog::new();
                for (i, (frag, result)) in decomposed.fragments.iter().zip(results).enumerate() {
                    let table =
                        Table::from_batches(frag_table(i), frag.output_schema(), result.batches)
                            .map_err(|e| {
                                QccError::Execution(format!("fragment {i} result mismatch: {e}"))
                            })?;
                    catalog.register(table);
                }
                let engine = Engine::new(catalog);
                let (rows, work) = engine.execute_sql(&stmt.to_string())?;
                let merge_start = clock.now();
                let rho = self.ii_load.utilization(merge_start);
                let merge_ms = work.cpu_units / self.config.ii_speed * slowdown(rho, 1.0);
                clock.advance(SimDuration::from_millis(merge_ms));
                if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    effects.defer(move || {
                        obs.event(
                            merge_start,
                            "merge",
                            vec![("query", qid.0.into()), ("ms", merge_ms.into())],
                        );
                    });
                }
                Ok((rows, fragment_times))
            }
        }
    }
}

/// Comma-joined server names (sets iterate sorted, so this is stable).
fn join_servers(set: &BTreeSet<ServerId>) -> String {
    set.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(",")
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("nicknames", &self.nicknames.names())
            .field("wrappers", &self.wrappers.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::PassthroughMiddleware;
    use qcc_common::{Column, DataType, Schema, SimTime, Value};
    use qcc_netsim::{Link, Network};
    use qcc_remote::{RemoteServer, ServerProfile};
    use qcc_wrapper::RelationalWrapper;

    /// Two servers: S1 hosts accounts+branches, S2 hosts a replica of
    /// branches only.
    fn setup() -> Federation {
        let accounts_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("balance", DataType::Float),
            Column::new("branch_id", DataType::Int),
        ]);
        let branches_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Str),
        ]);

        let mut accounts = Table::new("accounts", accounts_schema.clone());
        for i in 0..500i64 {
            accounts
                .insert(Row::new(vec![
                    Value::Int(i),
                    Value::Float((i % 100) as f64),
                    Value::Int(i % 10),
                ]))
                .unwrap();
        }
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..10i64 {
            branches
                .insert(Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("city{i}")),
                ]))
                .unwrap();
        }

        let mut cat1 = Catalog::new();
        cat1.register(accounts.clone());
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches.clone());

        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);

        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);

        let mut nicknames = NicknameCatalog::new();
        nicknames.define("accounts", accounts_schema);
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();

        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));
        fed
    }

    #[test]
    fn single_source_query_round_trips() {
        let fed = setup();
        let out = fed
            .submit("SELECT COUNT(*) FROM accounts WHERE balance > 50.0")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(0), &Value::Int(245));
        assert!(out.response_ms > 0.0);
        assert_eq!(fed.patroller().len(), 1);
    }

    #[test]
    fn colocated_join_pushes_to_s1() {
        let fed = setup();
        let out = fed
            .submit(
                "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
                 ON a.branch_id = b.id GROUP BY b.city ORDER BY b.city",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 10);
        assert_eq!(out.rows[0].get(1), &Value::Int(50));
        assert!(out.servers.contains(&ServerId::new("S1")));
        assert_eq!(out.servers.len(), 1, "join pushed to the coherent host");
    }

    #[test]
    fn replica_choice_exists_for_replicated_nickname() {
        let fed = setup();
        let (_, candidates) = fed.explain_global("SELECT COUNT(*) FROM branches").unwrap();
        let servers: BTreeSet<String> = candidates
            .iter()
            .map(|c| c.server_set().iter().next().unwrap().to_string())
            .collect();
        assert!(servers.contains("S1") && servers.contains("S2"));
    }

    #[test]
    fn explain_table_records_winner() {
        let fed = setup();
        fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(fed.explain_table().len(), 1);
    }

    #[test]
    fn failure_reroutes_to_replica() {
        // Build a setup where we keep direct handles to the servers.
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..10i64 {
            branches.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(branches.clone());
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(&s1),
            Arc::clone(&net),
        )));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));

        // S1 goes down *after compile time* is hard to time here; instead
        // take it down for the whole run — compile skips it, S2 serves.
        s1.availability()
            .add_outage(SimTime::ZERO, SimTime::from_millis(1e12));
        let out = fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(out.rows[0].get(0), &Value::Int(10));
        assert!(out.servers.contains(&ServerId::new("S2")));
    }

    #[test]
    fn no_viable_plan_when_all_sources_down() {
        let branches_schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut cat = Catalog::new();
        cat.register(Table::new("branches", branches_schema.clone()));
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat);
        s1.availability()
            .add_outage(SimTime::ZERO, SimTime::from_millis(1e12));
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::new(net))));
        let err = fed.submit("SELECT COUNT(*) FROM branches").unwrap_err();
        assert!(matches!(err, QccError::NoViablePlan(_)), "{err}");
        assert_eq!(
            fed.patroller().log()[0].status,
            crate::patroller::QueryStatus::Failed(err.to_string())
        );
    }

    #[test]
    fn clock_advances_with_execution() {
        let fed = setup();
        let before = fed.clock().now();
        fed.submit("SELECT * FROM accounts WHERE id < 100").unwrap();
        assert!(fed.clock().now() > before);
    }

    #[test]
    fn cross_source_merge_join_correct() {
        // Force a split: accounts only on S1, branches only on S2.
        let accounts_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("branch_id", DataType::Int),
        ]);
        let branches_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("city", DataType::Str),
        ]);
        let mut accounts = Table::new("accounts", accounts_schema.clone());
        for i in 0..100i64 {
            accounts
                .insert(Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        let mut branches = Table::new("branches", branches_schema.clone());
        for i in 0..5i64 {
            branches
                .insert(Row::new(vec![Value::Int(i), Value::Str(format!("c{i}"))]))
                .unwrap();
        }
        let mut cat1 = Catalog::new();
        cat1.register(accounts);
        let mut cat2 = Catalog::new();
        cat2.register(branches);
        let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
        let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);
        let mut net = Network::new();
        net.add_link(ServerId::new("S1"), Link::lan());
        net.add_link(ServerId::new("S2"), Link::lan());
        let net = Arc::new(net);
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("accounts", accounts_schema);
        nicknames.define("branches", branches_schema);
        nicknames
            .add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        nicknames
            .add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        fed.set_obs(Obs::new());
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));

        let out = fed
            .submit(
                "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
                 ON a.branch_id = b.id GROUP BY b.city ORDER BY b.city",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 5);
        for r in &out.rows {
            assert_eq!(r.get(1), &Value::Int(20));
        }
        assert_eq!(out.servers.len(), 2, "both sources touched");
        assert_eq!(out.fragment_times.len(), 2);
        // A cross-source split is the one shape that exercises the local
        // merge, so this is where the "merge" journal event is pinned.
        let merges = fed.obs().events_of("merge");
        assert_eq!(merges.len(), 1);
        assert!(merges[0].field("ms").is_some());
        assert_eq!(fed.obs().events_of("fragment").len(), 2);
    }

    #[test]
    fn pressured_fragment_hedges_to_replica_and_suppresses_duplicate() {
        let mut fed = setup();
        fed.set_obs(Obs::new());
        // A slack factor this large marks every fragment of a
        // finite-deadline query as pressured, so the replicated nickname
        // must hedge to its second host.
        let admission = Arc::new(AdmissionController::new(qcc_admission::AdmissionConfig {
            exec_deadline_ms: 50.0,
            hedge_slack_factor: 1_000_000.0,
            hedge_band: 10.0,
            ..Default::default()
        }));
        admission.set_capacity(&ServerId::new("S1"), 2, SimTime::ZERO);
        admission.set_capacity(&ServerId::new("S2"), 2, SimTime::ZERO);
        fed.set_admission(Arc::clone(&admission));

        let out = fed.submit("SELECT COUNT(*) FROM branches").unwrap();
        assert_eq!(
            out.rows[0].get(0),
            &Value::Int(10),
            "one merged result; the losing replica's rows are suppressed"
        );
        let hedges = fed.obs().events_of("hedge");
        assert_eq!(hedges.len(), 1, "single-fragment plan hedges exactly once");
        assert!(hedges[0].field("primary").is_some());
        assert_ne!(
            hedges[0].field("primary"),
            hedges[0].field("hedge"),
            "the hedge replica must sit on a different server"
        );
        let results = fed.obs().events_of("hedge_result");
        assert_eq!(results.len(), 1);
        assert!(results[0].field("winner").is_some());
        assert_eq!(
            fed.obs()
                .counter_value("hedge_duplicates_suppressed_total", &[]),
            1,
            "healthy world: both replicas answer, exactly one duplicate suppressed"
        );
    }
}
