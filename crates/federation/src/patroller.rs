//! The query patroller.
//!
//! Per the paper (§1): the patroller intercepts every user query, records
//! the statement and submission time, and after execution records the
//! completion time "in the log for future use" — the QCC mines this log.

use parking_lot::Mutex;
use qcc_common::{Obs, QueryId, SimTime};
use std::sync::Arc;

/// Terminal status of a logged query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStatus {
    /// Still executing.
    Running,
    /// Completed successfully.
    Completed,
    /// Failed with an error message.
    Failed(String),
}

/// One log entry.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    /// Assigned query id.
    pub id: QueryId,
    /// The federated SQL text.
    pub sql: String,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time (when finished).
    pub completed: Option<SimTime>,
    /// Status.
    pub status: QueryStatus,
}

/// The patroller: id assignment plus an append-only log. Clones share
/// the log.
#[derive(Debug, Clone, Default)]
pub struct QueryPatroller {
    inner: Arc<Mutex<PatrollerState>>,
}

#[derive(Debug, Default)]
struct PatrollerState {
    next_id: u64,
    log: Vec<QueryLogEntry>,
    /// Journal handle. The federation calls the patroller only from
    /// coordinator-sequential code (submits before the scatter, finishes
    /// at the gather barrier in task order), so direct journal emission
    /// here is deterministic.
    obs: Obs,
}

impl QueryPatroller {
    /// A fresh patroller.
    pub fn new() -> Self {
        QueryPatroller::default()
    }

    /// Attach an observability handle.
    pub fn set_obs(&self, obs: Obs) {
        self.inner.lock().obs = obs;
    }

    /// Record a submission; returns the assigned id.
    pub fn record_submit(&self, sql: &str, at: SimTime) -> QueryId {
        let mut st = self.inner.lock();
        let id = QueryId(st.next_id);
        st.next_id += 1;
        st.log.push(QueryLogEntry {
            id,
            sql: sql.to_owned(),
            submitted: at,
            completed: None,
            status: QueryStatus::Running,
        });
        st.obs.event(
            at,
            "query_submit",
            vec![("query", id.0.into()), ("sql", sql.into())],
        );
        id
    }

    /// Record successful completion.
    pub fn record_complete(&self, id: QueryId, at: SimTime) {
        self.finish(id, at, QueryStatus::Completed);
    }

    /// Record failure.
    pub fn record_failure(&self, id: QueryId, at: SimTime, error: String) {
        self.finish(id, at, QueryStatus::Failed(error));
    }

    fn finish(&self, id: QueryId, at: SimTime, status: QueryStatus) {
        let mut st = self.inner.lock();
        // Ids are assigned densely from 0 and the log is append-only, so
        // entry `i` holds QueryId(i) — O(1) under concurrent completion
        // traffic instead of a scan per finished query.
        let finished = {
            let Some(e) = st.log.get_mut(id.0 as usize).filter(|e| e.id == id) else {
                return;
            };
            e.completed = Some(at);
            e.status = status;
            (at.since(e.submitted).as_millis(), e.status.clone())
        };
        let (ms, status) = finished;
        match &status {
            QueryStatus::Completed => {
                st.obs.event(
                    at,
                    "query_complete",
                    vec![("query", id.0.into()), ("ms", ms.into())],
                );
                st.obs.observe("query_response_ms", &[], ms);
                st.obs.counter_inc("queries_total", &[("status", "ok")]);
            }
            QueryStatus::Failed(error) => {
                let error = error.clone();
                st.obs.event(
                    at,
                    "query_failed",
                    vec![("query", id.0.into()), ("error", error.into())],
                );
                st.obs.counter_inc("queries_total", &[("status", "failed")]);
            }
            QueryStatus::Running => {}
        }
    }

    /// Snapshot of the log.
    pub fn log(&self) -> Vec<QueryLogEntry> {
        self.inner.lock().log.clone()
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::SimDuration;

    #[test]
    fn submit_complete_cycle() {
        let p = QueryPatroller::new();
        let t0 = SimTime::ZERO;
        let id = p.record_submit("SELECT 1", t0);
        let t1 = t0 + SimDuration::from_millis(42.0);
        p.record_complete(id, t1);
        let log = p.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].status, QueryStatus::Completed);
        assert_eq!(
            log[0]
                .completed
                .unwrap()
                .since(log[0].submitted)
                .as_millis(),
            42.0
        );
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let p = QueryPatroller::new();
        let a = p.record_submit("a", SimTime::ZERO);
        let b = p.record_submit("b", SimTime::ZERO);
        assert!(b > a);
    }

    #[test]
    fn failures_recorded() {
        let p = QueryPatroller::new();
        let id = p.record_submit("bad", SimTime::ZERO);
        p.record_failure(id, SimTime::ZERO, "server down".into());
        assert!(matches!(p.log()[0].status, QueryStatus::Failed(_)));
    }

    #[test]
    fn clones_share_log() {
        let p = QueryPatroller::new();
        let q = p.clone();
        p.record_submit("x", SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
