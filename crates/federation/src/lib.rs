//! The federated information integrator (the paper's "II").
//!
//! This crate reproduces, from scratch, the substrate the paper builds on
//! (its Figure 1): a cost-based federated query processor that
//!
//! 1. resolves *nicknames* to remote tables — possibly replicated across
//!    several servers ([`NicknameCatalog`]),
//! 2. rewrites a federated query into per-source *query fragments*
//!    ([`decompose()`](decompose::decompose)),
//! 3. collects candidate fragment execution plans and their estimated
//!    costs from the wrappers (through a pluggable [`Middleware`] — the
//!    seam where the paper's meta-wrapper and QCC attach),
//! 4. performs global cost-based optimization over the combinations
//!    ([`Federation::explain_global`]), storing the winner in the explain
//!    table,
//! 5. executes the chosen fragments at the remote servers and merges the
//!    results locally with a real relational engine, and
//! 6. logs submission/completion times in the [`QueryPatroller`].
//!
//! Without a calibrating middleware this behaves like the paper's baseline
//! prototype: cost functions reflect statistics only, never load or
//! network state.

pub mod decompose;
pub mod federation;
pub mod middleware;
pub mod nickname;
pub mod patroller;
pub mod plancache;
pub mod report;

pub use decompose::{decompose, DecomposedQuery, FragmentSpec, MergeSpec};
pub use federation::{Federation, FederationConfig, QueryOutcome};
pub use middleware::{
    Deferred, FragmentCandidate, GlobalCandidate, Middleware, PassthroughMiddleware,
    DEFAULT_UNCOSTED,
};
pub use nickname::{NicknameCatalog, NicknameDef, SourceMapping};
pub use patroller::{QueryLogEntry, QueryPatroller, QueryStatus};
pub use plancache::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use report::render_explain;
