//! The meta-wrapper's plan cache.
//!
//! Figure 5's walkthrough: *"since we already have a plan and an estimated
//! cost for QF1, MW can compute the calibrated runtime cost without
//! having to consult the wrapper."* The cache stores each wrapper's raw
//! EXPLAIN response keyed by (server, exact fragment SQL); on a hit the
//! meta-wrapper re-applies the *current* calibration factors to the
//! cached raw estimates and skips the network round trip entirely.

use parking_lot::Mutex;
use qcc_common::ServerId;
use qcc_wrapper::FragmentPlan;
use std::collections::BTreeMap;

/// Shared compile-time plan cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Mutex<BTreeMap<(ServerId, String), Vec<FragmentPlan>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Cached wrapper plans for this (server, fragment SQL), if any.
    pub fn get(&self, server: &ServerId, sql: &str) -> Option<Vec<FragmentPlan>> {
        let found = self
            .entries
            .lock()
            .get(&(server.clone(), sql.to_owned()))
            .cloned();
        if found.is_some() {
            *self.hits.lock() += 1;
        } else {
            *self.misses.lock() += 1;
        }
        found
    }

    /// Store a wrapper's EXPLAIN response.
    pub fn put(&self, server: &ServerId, sql: &str, plans: Vec<FragmentPlan>) {
        self.entries
            .lock()
            .insert((server.clone(), sql.to_owned()), plans);
    }

    /// Drop every cached plan for one server (e.g. after it was down —
    /// its catalog may have changed while unreachable).
    pub fn invalidate_server(&self, server: &ServerId) {
        self.entries.lock().retain(|(s, _), _| s != server);
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::Cost;

    fn plan(server: &str) -> FragmentPlan {
        FragmentPlan {
            server: ServerId::new(server),
            sql: "SELECT 1".into(),
            descriptor: None,
            cost: Some(Cost::fixed(3.0)),
            signature: "sig".into(),
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let c = PlanCache::new();
        let s = ServerId::new("S1");
        assert!(c.get(&s, "q").is_none());
        c.put(&s, "q", vec![plan("S1")]);
        assert_eq!(c.get(&s, "q").unwrap().len(), 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn keys_are_per_server_and_sql() {
        let c = PlanCache::new();
        c.put(&ServerId::new("S1"), "q", vec![plan("S1")]);
        assert!(c.get(&ServerId::new("S2"), "q").is_none());
        assert!(c.get(&ServerId::new("S1"), "other").is_none());
    }

    #[test]
    fn invalidate_server_is_selective() {
        let c = PlanCache::new();
        c.put(&ServerId::new("S1"), "q", vec![plan("S1")]);
        c.put(&ServerId::new("S2"), "q", vec![plan("S2")]);
        c.invalidate_server(&ServerId::new("S1"));
        assert!(c.get(&ServerId::new("S1"), "q").is_none());
        assert!(c.get(&ServerId::new("S2"), "q").is_some());
        c.clear();
        assert!(c.is_empty());
    }
}
