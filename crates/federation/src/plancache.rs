//! The meta-wrapper's plan cache.
//!
//! Figure 5's walkthrough: *"since we already have a plan and an estimated
//! cost for QF1, MW can compute the calibrated runtime cost without
//! having to consult the wrapper."* The cache stores each wrapper's raw
//! EXPLAIN response keyed by (server, exact fragment SQL); on a hit the
//! meta-wrapper re-applies the *current* calibration factors to the
//! cached raw estimates and skips the network round trip entirely.
//!
//! Values are `Arc<Vec<FragmentPlan>>` so a hit is a pointer bump, not a
//! deep clone of plan descriptors, and the hit/miss counters are lock-free
//! atomics — under compile-time fan-out every worker thread probes the
//! cache concurrently, so `get` takes exactly one short map lock.
//!
//! The cache is **bounded**: at most `capacity` entries, evicted in
//! insertion order (FIFO) so the eviction sequence is deterministic — it
//! depends only on the order of inserts, never on access patterns or
//! thread interleavings that re-touch existing keys. Overwriting an
//! existing key keeps its original queue position.

use parking_lot::Mutex;
use qcc_common::{Obs, ServerId};
use qcc_wrapper::FragmentPlan;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default entry cap (see `QccConfig::plan_cache_capacity`). Far above
/// the workloads simulated here; the bound exists so a production-scale
/// stream of distinct fragment SQLs cannot grow the cache forever.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct CacheState {
    entries: BTreeMap<ServerId, BTreeMap<String, Arc<Vec<FragmentPlan>>>>,
    /// Insertion order of live keys. May contain stale pairs for keys
    /// already removed by `invalidate_server`/`clear`; eviction skips
    /// those lazily (a stale pop is not an eviction).
    order: VecDeque<(ServerId, String)>,
    /// Live entry count (kept explicit so `len` is O(1) under the lock).
    live: usize,
}

/// Shared compile-time plan cache with a FIFO entry cap.
#[derive(Debug)]
pub struct PlanCache {
    state: Mutex<CacheState>,
    /// Maximum live entries; 0 means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs: Obs,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Empty cache with the default entry cap.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Empty cache holding at most `capacity` entries (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            state: Mutex::new(CacheState::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: Obs::off(),
        }
    }

    /// Attach an observability handle (hit/miss/eviction counters).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The configured entry cap (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cached wrapper plans for this (server, fragment SQL), if any.
    /// Hits share the stored vector; nothing is deep-cloned.
    pub fn get(&self, server: &ServerId, sql: &str) -> Option<Arc<Vec<FragmentPlan>>> {
        let found = self
            .state
            .lock()
            .entries
            .get(server)
            .and_then(|per_server| per_server.get(sql))
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.counter_inc("plan_cache_hits_total", &[]);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.obs.counter_inc("plan_cache_misses_total", &[]);
        }
        found
    }

    /// Store a wrapper's EXPLAIN response.
    pub fn put(&self, server: &ServerId, sql: &str, plans: Vec<FragmentPlan>) {
        self.put_shared(server, sql, Arc::new(plans));
    }

    /// Store an already-shared EXPLAIN response (avoids re-wrapping when
    /// the caller keeps a handle too). May evict the oldest entries to
    /// stay within the cap.
    pub fn put_shared(&self, server: &ServerId, sql: &str, plans: Arc<Vec<FragmentPlan>>) {
        let mut st = self.state.lock();
        let fresh = st
            .entries
            .entry(server.clone())
            .or_default()
            .insert(sql.to_owned(), plans)
            .is_none();
        if !fresh {
            return;
        }
        st.live += 1;
        st.order.push_back((server.clone(), sql.to_owned()));
        while self.capacity > 0 && st.live > self.capacity {
            let Some((srv, key)) = st.order.pop_front() else {
                break;
            };
            let mut removed = false;
            if let Some(per_server) = st.entries.get_mut(&srv) {
                removed = per_server.remove(&key).is_some();
                if per_server.is_empty() {
                    st.entries.remove(&srv);
                }
            }
            if removed {
                st.live -= 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.obs.counter_inc("plan_cache_evictions_total", &[]);
            }
        }
    }

    /// Drop every cached plan for one server (e.g. after it was down —
    /// its catalog may have changed while unreachable). Not counted as
    /// evictions.
    pub fn invalidate_server(&self, server: &ServerId) {
        let mut st = self.state.lock();
        if let Some(per_server) = st.entries.remove(server) {
            st.live -= per_server.len();
        }
    }

    /// Drop the cached plans for `server` whose fragment SQL references
    /// any of the `fragments` table names (matched as whole identifiers,
    /// case-insensitive). Returns the number of entries dropped.
    ///
    /// This is the catalog-scoped flavour of [`PlanCache::invalidate_server`]:
    /// on a server-down transition the replica catalog knows exactly which
    /// fragments the server hosted, so cached plans for *other* tables on
    /// the same server — and every entry on every other server — survive
    /// the churn. Pass the table names as they appear in the cached
    /// fragment SQL (the wrapper-translated remote names).
    pub fn invalidate_fragments(&self, server: &ServerId, fragments: &[String]) -> usize {
        if fragments.is_empty() {
            return 0;
        }
        let targets: Vec<String> = fragments.iter().map(|f| f.to_ascii_lowercase()).collect();
        let mut st = self.state.lock();
        let Some(per_server) = st.entries.get_mut(server) else {
            return 0;
        };
        let doomed: Vec<String> = per_server
            .keys()
            .filter(|sql| {
                let lower = sql.to_ascii_lowercase();
                targets.iter().any(|t| references_identifier(&lower, t))
            })
            .cloned()
            .collect();
        for key in &doomed {
            per_server.remove(key);
        }
        if per_server.is_empty() {
            st.entries.remove(server);
        }
        st.live -= doomed.len();
        doomed.len()
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.order.clear();
        st.live = 0;
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of entries evicted by the cap (invalidations don't count).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().live
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether `sql` (already lowercased) contains `ident` as a whole
/// identifier — not as a substring of a longer one.
fn references_identifier(sql: &str, ident: &str) -> bool {
    let is_ident_byte = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = sql.as_bytes();
    let mut from = 0;
    while let Some(pos) = sql[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end == sql.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::Cost;

    fn plan(server: &str) -> FragmentPlan {
        FragmentPlan {
            server: ServerId::new(server),
            sql: "SELECT 1".into(),
            descriptor: None,
            cost: Some(Cost::fixed(3.0)),
            signature: "sig".into(),
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let c = PlanCache::new();
        let s = ServerId::new("S1");
        assert!(c.get(&s, "q").is_none());
        c.put(&s, "q", vec![plan("S1")]);
        assert_eq!(c.get(&s, "q").unwrap().len(), 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn hits_share_the_stored_vector() {
        let c = PlanCache::new();
        let s = ServerId::new("S1");
        c.put(&s, "q", vec![plan("S1")]);
        let a = c.get(&s, "q").unwrap();
        let b = c.get(&s, "q").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn keys_are_per_server_and_sql() {
        let c = PlanCache::new();
        c.put(&ServerId::new("S1"), "q", vec![plan("S1")]);
        assert!(c.get(&ServerId::new("S2"), "q").is_none());
        assert!(c.get(&ServerId::new("S1"), "other").is_none());
    }

    #[test]
    fn invalidate_server_is_selective() {
        let c = PlanCache::new();
        c.put(&ServerId::new("S1"), "q", vec![plan("S1")]);
        c.put(&ServerId::new("S2"), "q", vec![plan("S2")]);
        c.invalidate_server(&ServerId::new("S1"));
        assert!(c.get(&ServerId::new("S1"), "q").is_none());
        assert!(c.get(&ServerId::new("S2"), "q").is_some());
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_fragments_is_scoped_to_referencing_entries() {
        let c = PlanCache::new();
        let s1 = ServerId::new("S1");
        let s2 = ServerId::new("S2");
        c.put(
            &s1,
            "SELECT a.id FROM big_a a WHERE a.sel < 10",
            vec![plan("S1")],
        );
        c.put(&s1, "SELECT COUNT(*) FROM small_s", vec![plan("S1")]);
        c.put(
            &s2,
            "SELECT a.id FROM big_a a WHERE a.sel < 10",
            vec![plan("S2")],
        );
        let dropped = c.invalidate_fragments(&s1, &["big_a".to_string()]);
        assert_eq!(dropped, 1);
        assert!(c
            .get(&s1, "SELECT a.id FROM big_a a WHERE a.sel < 10")
            .is_none());
        assert!(
            c.get(&s1, "SELECT COUNT(*) FROM small_s").is_some(),
            "entries for other fragments on the same server survive"
        );
        assert!(
            c.get(&s2, "SELECT a.id FROM big_a a WHERE a.sel < 10")
                .is_some(),
            "other servers' entries survive"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_fragments_matches_whole_identifiers_only() {
        let c = PlanCache::new();
        let s = ServerId::new("S1");
        c.put(&s, "SELECT * FROM big_ab", vec![plan("S1")]);
        c.put(&s, "SELECT * FROM BIG_A", vec![plan("S1")]);
        assert_eq!(c.invalidate_fragments(&s, &["big_a".to_string()]), 1);
        assert!(
            c.get(&s, "SELECT * FROM big_ab").is_some(),
            "no substring match"
        );
        assert!(
            c.get(&s, "SELECT * FROM BIG_A").is_none(),
            "case-insensitive"
        );
        assert_eq!(c.invalidate_fragments(&s, &[]), 0);
        assert_eq!(
            c.invalidate_fragments(&ServerId::new("S9"), &["big_a".into()]),
            0
        );
    }

    #[test]
    fn cap_evicts_in_insertion_order() {
        let c = PlanCache::with_capacity(2);
        let s = ServerId::new("S1");
        c.put(&s, "q1", vec![plan("S1")]);
        c.put(&s, "q2", vec![plan("S1")]);
        c.put(&s, "q3", vec![plan("S1")]); // evicts q1 (oldest)
        assert!(c.get(&s, "q1").is_none());
        assert!(c.get(&s, "q2").is_some());
        assert!(c.get(&s, "q3").is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn overwrite_keeps_queue_position_and_never_evicts() {
        let c = PlanCache::with_capacity(2);
        let s = ServerId::new("S1");
        c.put(&s, "q1", vec![plan("S1")]);
        c.put(&s, "q2", vec![plan("S1")]);
        // Re-putting q1 is an overwrite: no growth, no eviction, and q1
        // stays oldest.
        c.put(&s, "q1", vec![plan("S1")]);
        assert_eq!((c.len(), c.evictions()), (2, 0));
        c.put(&s, "q3", vec![plan("S1")]);
        assert!(c.get(&s, "q1").is_none(), "q1 was still the FIFO head");
        assert!(c.get(&s, "q2").is_some());
    }

    #[test]
    fn invalidation_leaves_stale_queue_entries_harmless() {
        let c = PlanCache::with_capacity(2);
        let s1 = ServerId::new("S1");
        let s2 = ServerId::new("S2");
        c.put(&s1, "q1", vec![plan("S1")]);
        c.put(&s2, "q2", vec![plan("S2")]);
        c.invalidate_server(&s1);
        assert_eq!(c.len(), 1);
        // Two inserts fit: the stale (S1, q1) queue entry is skipped by
        // eviction without being counted.
        c.put(&s2, "q3", vec![plan("S2")]);
        assert_eq!((c.len(), c.evictions()), (2, 0));
        c.put(&s2, "q4", vec![plan("S2")]); // now a real eviction: q2
        assert_eq!((c.len(), c.evictions()), (2, 1));
        assert!(c.get(&s2, "q2").is_none());
        assert!(c.get(&s2, "q3").is_some());
        assert!(c.get(&s2, "q4").is_some());
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let c = PlanCache::with_capacity(0);
        let s = ServerId::new("S1");
        for i in 0..100 {
            c.put(&s, &format!("q{i}"), vec![plan("S1")]);
        }
        assert_eq!((c.len(), c.evictions()), (100, 0));
    }

    #[test]
    fn eviction_counter_surfaces_via_obs() {
        let obs = Obs::new();
        let c = PlanCache::with_capacity(1).with_obs(obs.clone());
        let s = ServerId::new("S1");
        c.put(&s, "q1", vec![plan("S1")]);
        c.put(&s, "q2", vec![plan("S1")]);
        let _ = c.get(&s, "q2");
        let _ = c.get(&s, "gone");
        assert_eq!(obs.counter_value("plan_cache_evictions_total", &[]), 1);
        assert_eq!(obs.counter_value("plan_cache_hits_total", &[]), 1);
        assert_eq!(obs.counter_value("plan_cache_misses_total", &[]), 1);
    }
}
