//! The meta-wrapper's plan cache.
//!
//! Figure 5's walkthrough: *"since we already have a plan and an estimated
//! cost for QF1, MW can compute the calibrated runtime cost without
//! having to consult the wrapper."* The cache stores each wrapper's raw
//! EXPLAIN response keyed by (server, exact fragment SQL); on a hit the
//! meta-wrapper re-applies the *current* calibration factors to the
//! cached raw estimates and skips the network round trip entirely.
//!
//! Values are `Arc<Vec<FragmentPlan>>` so a hit is a pointer bump, not a
//! deep clone of plan descriptors, and the hit/miss counters are lock-free
//! atomics — under compile-time fan-out every worker thread probes the
//! cache concurrently, so `get` takes exactly one short map lock.

use parking_lot::Mutex;
use qcc_common::ServerId;
use qcc_wrapper::FragmentPlan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared compile-time plan cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Mutex<BTreeMap<ServerId, BTreeMap<String, Arc<Vec<FragmentPlan>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Cached wrapper plans for this (server, fragment SQL), if any.
    /// Hits share the stored vector; nothing is deep-cloned.
    pub fn get(&self, server: &ServerId, sql: &str) -> Option<Arc<Vec<FragmentPlan>>> {
        let found = self
            .entries
            .lock()
            .get(server)
            .and_then(|per_server| per_server.get(sql))
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Store a wrapper's EXPLAIN response.
    pub fn put(&self, server: &ServerId, sql: &str, plans: Vec<FragmentPlan>) {
        self.put_shared(server, sql, Arc::new(plans));
    }

    /// Store an already-shared EXPLAIN response (avoids re-wrapping when
    /// the caller keeps a handle too).
    pub fn put_shared(&self, server: &ServerId, sql: &str, plans: Arc<Vec<FragmentPlan>>) {
        self.entries
            .lock()
            .entry(server.clone())
            .or_default()
            .insert(sql.to_owned(), plans);
    }

    /// Drop every cached plan for one server (e.g. after it was down —
    /// its catalog may have changed while unreachable).
    pub fn invalidate_server(&self, server: &ServerId) {
        self.entries.lock().remove(server);
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().values().map(BTreeMap::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::Cost;

    fn plan(server: &str) -> FragmentPlan {
        FragmentPlan {
            server: ServerId::new(server),
            sql: "SELECT 1".into(),
            descriptor: None,
            cost: Some(Cost::fixed(3.0)),
            signature: "sig".into(),
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let c = PlanCache::new();
        let s = ServerId::new("S1");
        assert!(c.get(&s, "q").is_none());
        c.put(&s, "q", vec![plan("S1")]);
        assert_eq!(c.get(&s, "q").unwrap().len(), 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn hits_share_the_stored_vector() {
        let c = PlanCache::new();
        let s = ServerId::new("S1");
        c.put(&s, "q", vec![plan("S1")]);
        let a = c.get(&s, "q").unwrap();
        let b = c.get(&s, "q").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn keys_are_per_server_and_sql() {
        let c = PlanCache::new();
        c.put(&ServerId::new("S1"), "q", vec![plan("S1")]);
        assert!(c.get(&ServerId::new("S2"), "q").is_none());
        assert!(c.get(&ServerId::new("S1"), "other").is_none());
    }

    #[test]
    fn invalidate_server_is_selective() {
        let c = PlanCache::new();
        c.put(&ServerId::new("S1"), "q", vec![plan("S1")]);
        c.put(&ServerId::new("S2"), "q", vec![plan("S2")]);
        c.invalidate_server(&ServerId::new("S1"));
        assert!(c.get(&ServerId::new("S1"), "q").is_none());
        assert!(c.get(&ServerId::new("S2"), "q").is_some());
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }
}
