//! Human-readable EXPLAIN reports for federated queries.
//!
//! `Federation::explain_global` returns structured candidates; this module
//! renders them the way DB2's explain facility would — decomposition,
//! per-fragment candidates with their (calibrated) costs, and the global
//! ranking — so users can see *why* the router picked a server.

use crate::decompose::{DecomposedQuery, MergeSpec};
use crate::middleware::GlobalCandidate;
use std::fmt::Write as _;

/// Render a full explain report.
pub fn render_explain(decomposed: &DecomposedQuery, candidates: &[GlobalCandidate]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Federated query: {}", decomposed.stmt);
    let _ = writeln!(out, "Template:        {}", decomposed.template_signature);
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "Decomposition: {} fragment(s)",
        decomposed.fragments.len()
    );
    for frag in &decomposed.fragments {
        let _ = writeln!(
            out,
            "  fragment {} over [{}]{}",
            frag.index,
            frag.nicknames.join(", "),
            if frag.full_pushdown {
                " (full pushdown)"
            } else {
                ""
            }
        );
        let _ = writeln!(out, "    SQL: {}", frag.stmt);
        let servers: Vec<String> = frag
            .candidate_servers
            .iter()
            .map(|s| s.to_string())
            .collect();
        let _ = writeln!(out, "    candidate servers: {}", servers.join(", "));
        if !frag.output.is_empty() {
            let cols: Vec<String> = frag
                .output
                .iter()
                .map(|c| format!("{}.{}→{}", c.binding, c.column, c.out_name))
                .collect();
            let _ = writeln!(out, "    ships: {}", cols.join(", "));
        }
    }
    match &decomposed.merge {
        MergeSpec::Passthrough => {
            let _ = writeln!(out, "Integration: passthrough (remote result is final)");
        }
        MergeSpec::Merge { stmt } => {
            let _ = writeln!(out, "Integration: merge at II");
            let _ = writeln!(out, "    SQL: {stmt}");
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "Global candidates ({}):", candidates.len());
    for (rank, cand) in candidates.iter().enumerate() {
        let servers: Vec<String> = cand.server_set().iter().map(|s| s.to_string()).collect();
        let _ = writeln!(
            out,
            "  #{:<2} total {:>10.3}  servers {{{}}}",
            rank + 1,
            cand.total_cost(),
            servers.join(", ")
        );
        for fc in &cand.fragments {
            let raw = fc
                .plan
                .cost
                .map(|c| format!("{:.3}", c.total()))
                .unwrap_or_else(|| "uncosted".into());
            let _ = writeln!(
                out,
                "       {} @ {}: raw {} → effective {:.3}  [{}]",
                fc.fragment,
                fc.plan.server,
                raw,
                fc.effective_cost.total(),
                fc.plan.signature
            );
        }
        if cand.integration_cost.total() > 0.0 {
            let _ = writeln!(
                out,
                "       integration at II: {:.3}",
                cand.integration_cost.total()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{Federation, FederationConfig};
    use crate::middleware::PassthroughMiddleware;
    use crate::nickname::NicknameCatalog;
    use qcc_common::{Column, DataType, Row, Schema, ServerId, Value};
    use qcc_netsim::{Link, Network, SimClock};
    use qcc_remote::{RemoteServer, ServerProfile};
    use qcc_storage::{Catalog, Table};
    use qcc_wrapper::RelationalWrapper;
    use std::sync::Arc;

    fn federation() -> Federation {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let mut t = Table::new("t", schema.clone());
        for i in 0..100i64 {
            t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        let mut net = Network::new();
        let mut nicknames = NicknameCatalog::new();
        nicknames.define("t", schema);
        let mut fed_servers = Vec::new();
        for name in ["A", "B"] {
            let mut c = Catalog::new();
            c.register(t.clone());
            let s = RemoteServer::new(ServerProfile::new(ServerId::new(name)), c);
            net.add_link(ServerId::new(name), Link::lan());
            nicknames.add_source("t", ServerId::new(name), "t").unwrap();
            fed_servers.push(s);
        }
        let net = Arc::new(net);
        let mut fed = Federation::new(
            nicknames,
            SimClock::new(),
            Arc::new(PassthroughMiddleware::default()),
            FederationConfig::default(),
        );
        for s in fed_servers {
            fed.add_wrapper(Arc::new(RelationalWrapper::new(s, Arc::clone(&net))));
        }
        fed
    }

    #[test]
    fn report_contains_all_sections() {
        let fed = federation();
        let (decomposed, candidates) = fed
            .explain_global("SELECT v, COUNT(*) FROM t WHERE v > 1 GROUP BY v")
            .unwrap();
        let report = render_explain(&decomposed, &candidates);
        assert!(report.contains("Federated query:"));
        assert!(report.contains("Decomposition: 1 fragment(s)"));
        assert!(report.contains("full pushdown"));
        assert!(report.contains("candidate servers: A, B"));
        assert!(report.contains("Global candidates"));
        assert!(report.contains("@ A:"));
        assert!(report.contains("@ B:"));
    }

    #[test]
    fn report_ranks_by_cost() {
        let fed = federation();
        let (decomposed, candidates) = fed.explain_global("SELECT COUNT(*) FROM t").unwrap();
        let report = render_explain(&decomposed, &candidates);
        let one = report.find("#1 ").expect("rank 1 present");
        let two = report.find("#2 ").expect("rank 2 present");
        assert!(one < two, "ranks in order");
    }
}
