//! Query decomposition: federated statement → per-source fragments plus a
//! merge statement for the integrator.
//!
//! Mirrors the paper's compile-time step 2: *"II looks up the nickname
//! definitions in the user query and breaks (i.e. rewrites) the query into
//! multiple sub-queries"*. Nicknames that share a hosting server are
//! grouped into one fragment so joins run remotely when possible; joins
//! across fragments (and all aggregation in the multi-fragment case)
//! execute at the integrator.

use crate::nickname::NicknameCatalog;
use qcc_common::{QccError, Result, Schema, ServerId, Value};
use qcc_sql::{parse_select, BinaryOp, Expr, JoinClause, SelectItem, SelectStmt, TableRef};
use std::collections::{BTreeMap, BTreeSet};

/// One output column of a (non-full-pushdown) fragment.
#[derive(Debug, Clone)]
pub struct FragmentColumn {
    /// Binding the column came from.
    pub binding: String,
    /// Column name at the source.
    pub column: String,
    /// Column name in the fragment's output (`c0`, `c1`, ...).
    pub out_name: String,
    /// Column type.
    pub ty: qcc_common::DataType,
}

/// A fragment of a decomposed federated query.
#[derive(Debug, Clone)]
pub struct FragmentSpec {
    /// Fragment ordinal within the query.
    pub index: u32,
    /// Nicknames this fragment reads (lowercased), in binding order.
    pub nicknames: Vec<String>,
    /// Binding (alias) names, parallel to `nicknames`.
    pub bindings: Vec<String>,
    /// The fragment statement, in nickname space.
    pub stmt: SelectStmt,
    /// Servers that can execute this fragment (host every nickname).
    pub candidate_servers: Vec<ServerId>,
    /// Output columns (empty when `full_pushdown`, where the fragment
    /// returns the final query result directly).
    pub output: Vec<FragmentColumn>,
    /// True when this single fragment *is* the whole query.
    pub full_pushdown: bool,
}

impl FragmentSpec {
    /// The fragment SQL translated for a specific server (nicknames
    /// replaced by that server's remote table names, bindings preserved
    /// as aliases).
    pub fn sql_for_server(&self, catalog: &NicknameCatalog, server: &ServerId) -> Result<String> {
        let mut stmt = self.stmt.clone();
        let translate = |t: &mut TableRef| -> Result<()> {
            let binding = t.binding_name().to_owned();
            let remote = catalog.remote_table(&t.name, server)?;
            t.name = remote.to_owned();
            t.alias = Some(binding);
            Ok(())
        };
        translate(&mut stmt.from)?;
        for t in &mut stmt.from_rest {
            translate(t)?;
        }
        for j in &mut stmt.joins {
            translate(&mut j.table)?;
        }
        Ok(stmt.to_string())
    }

    /// Schema of the fragment's shipped result (used to register the
    /// result as a temp table for the merge step). Only meaningful when
    /// `!full_pushdown`.
    pub fn output_schema(&self) -> Schema {
        Schema::new(
            self.output
                .iter()
                .map(|c| qcc_common::Column::new(c.out_name.clone(), c.ty))
                .collect(),
        )
    }
}

/// How the integrator combines fragment results.
#[derive(Debug, Clone)]
pub enum MergeSpec {
    /// Single full-pushdown fragment: its rows are the final answer.
    Passthrough,
    /// Execute this statement over temp tables `__frag0`, `__frag1`, ...
    /// (boxed: the statement is much larger than the other variant).
    Merge {
        /// The merge statement.
        stmt: Box<SelectStmt>,
    },
}

/// A decomposed federated query.
#[derive(Debug, Clone)]
pub struct DecomposedQuery {
    /// The original statement, fully qualified.
    pub stmt: SelectStmt,
    /// The fragments.
    pub fragments: Vec<FragmentSpec>,
    /// The integration step.
    pub merge: MergeSpec,
    /// Template signature: the statement with literals blanked, used by
    /// the QCC to group "similar queries" (§4).
    pub template_signature: String,
}

/// Name of the temp table holding fragment `i`'s result at the integrator.
pub fn frag_table(i: usize) -> String {
    format!("__frag{i}")
}

/// Decompose a federated SQL statement.
pub fn decompose(sql: &str, catalog: &NicknameCatalog) -> Result<DecomposedQuery> {
    let stmt = parse_select(sql)?;

    // Bindings: (binding name, nickname, qualified schema).
    struct Binding {
        name: String,
        nickname: String,
        schema: Schema,
    }
    let mut bindings: Vec<Binding> = Vec::new();
    let mut seen = BTreeSet::new();
    for t in stmt.tables() {
        let def = catalog.get(&t.name)?;
        let name = t.binding_name().to_ascii_lowercase();
        if !seen.insert(name.clone()) {
            return Err(QccError::Planning(format!("duplicate binding '{name}'")));
        }
        bindings.push(Binding {
            schema: def.schema.qualify(&name),
            name,
            nickname: def.name.clone(),
        });
    }

    // Qualify every expression in the statement.
    let resolve = |table: Option<&str>, name: &str| -> Result<String> {
        let mut found: Option<&Binding> = None;
        for b in &bindings {
            let hit = match table {
                Some(t) => b.name.eq_ignore_ascii_case(t),
                None => b.schema.resolve(None, name).is_ok(),
            };
            if hit {
                if table.is_none() && found.is_some() {
                    return Err(QccError::AmbiguousColumn(name.to_owned()));
                }
                found = Some(b);
                if table.is_some() {
                    break;
                }
            }
        }
        let b = found.ok_or_else(|| QccError::UnknownColumn(name.to_owned()))?;
        b.schema.resolve(Some(&b.name), name)?;
        Ok(b.name.clone())
    };
    let qualified = qualify_stmt(&stmt, &resolve)?;

    // Collect conjuncts.
    let mut conjuncts = Vec::new();
    if let Some(w) = &qualified.where_clause {
        split_and(w, &mut conjuncts);
    }
    for j in &qualified.joins {
        split_and(&j.on, &mut conjuncts);
    }

    // Group bindings by shared hosting servers (greedy, FROM order).
    let mut groups: Vec<(Vec<usize>, Vec<ServerId>)> = Vec::new();
    for (bi, b) in bindings.iter().enumerate() {
        let servers: Vec<ServerId> = catalog
            .get(&b.nickname)?
            .sources
            .iter()
            .map(|s| s.server.clone())
            .collect();
        if servers.is_empty() {
            return Err(QccError::NoViablePlan(format!(
                "nickname {} has no sources",
                b.nickname
            )));
        }
        let mut placed = false;
        for (members, common) in groups.iter_mut() {
            let intersection: Vec<ServerId> = common
                .iter()
                .filter(|s| servers.contains(s))
                .cloned()
                .collect();
            if !intersection.is_empty() {
                members.push(bi);
                *common = intersection;
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((vec![bi], servers));
        }
    }

    let binding_group: BTreeMap<String, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, (members, _))| members.iter().map(move |&bi| (bi, gi)).collect::<Vec<_>>())
        .map(|(bi, gi)| (bindings[bi].name.clone(), gi))
        .collect();

    let template_signature = template_signature(&qualified);

    // Single group: full pushdown.
    if groups.len() == 1 {
        let (members, servers) = &groups[0];
        let frag = FragmentSpec {
            index: 0,
            nicknames: members
                .iter()
                .map(|&bi| bindings[bi].nickname.clone())
                .collect(),
            bindings: members
                .iter()
                .map(|&bi| bindings[bi].name.clone())
                .collect(),
            stmt: qualified.clone(),
            candidate_servers: servers.clone(),
            output: vec![],
            full_pushdown: true,
        };
        return Ok(DecomposedQuery {
            stmt: qualified,
            fragments: vec![frag],
            merge: MergeSpec::Passthrough,
            template_signature,
        });
    }

    // Multi-group: build per-group fragments and the merge statement.
    // Classify conjuncts as local (all refs in one group) or cross-group.
    let refs_of = |e: &Expr| -> BTreeSet<String> {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        cols.into_iter()
            .filter_map(|(t, _)| t.as_ref().map(|s| s.to_ascii_lowercase()))
            .collect()
    };
    let group_of_refs = |refs: &BTreeSet<String>| -> Option<usize> {
        let gs: BTreeSet<usize> = refs
            .iter()
            .filter_map(|b| binding_group.get(b).copied())
            .collect();
        if gs.len() == 1 {
            gs.into_iter().next()
        } else {
            None
        }
    };
    let mut local_conjuncts: Vec<Vec<Expr>> = vec![Vec::new(); groups.len()];
    let mut cross_conjuncts: Vec<Expr> = Vec::new();
    for c in &conjuncts {
        let refs = refs_of(c);
        match group_of_refs(&refs) {
            Some(g) if !refs.is_empty() => local_conjuncts[g].push(c.clone()),
            _ => cross_conjuncts.push(c.clone()),
        }
    }

    // Columns each fragment must ship: every column referenced outside the
    // fragment's local conjuncts (select list, cross conjuncts, group by,
    // having, order by) — or all columns on a bare wildcard.
    let mut needed: BTreeSet<(String, String)> = BTreeSet::new();
    let mut note = |e: &Expr| {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        for (t, c) in cols {
            if let Some(t) = t {
                needed.insert((t.to_ascii_lowercase(), c.to_ascii_lowercase()));
            }
        }
    };
    let mut wildcard = false;
    for item in &qualified.items {
        match item {
            SelectItem::Wildcard => wildcard = true,
            SelectItem::Expr { expr, .. } => note(expr),
        }
    }
    for c in &cross_conjuncts {
        note(c);
    }
    for g in &qualified.group_by {
        note(g);
    }
    if let Some(h) = &qualified.having {
        note(h);
    }
    for o in &qualified.order_by {
        note(&o.expr);
    }
    if wildcard {
        for b in &bindings {
            for col in b.schema.columns() {
                needed.insert((b.name.clone(), col.name.to_ascii_lowercase()));
            }
        }
    }

    // Build fragments.
    let mut fragments = Vec::with_capacity(groups.len());
    // (binding, column) -> (frag table binding, out column name)
    let mut rewrite_map: BTreeMap<(String, String), (String, String)> = BTreeMap::new();
    for (gi, (members, servers)) in groups.iter().enumerate() {
        let mut output = Vec::new();
        let mut items = Vec::new();
        for &bi in members {
            let b = &bindings[bi];
            // Ship needed columns in schema order for determinism.
            for col in b.schema.columns() {
                let key = (b.name.clone(), col.name.to_ascii_lowercase());
                if !needed.contains(&key) {
                    continue;
                }
                let out_name = format!("c{}", output.len());
                rewrite_map.insert(key, (frag_table(gi), out_name.clone()));
                items.push(SelectItem::Expr {
                    expr: Expr::qcol(b.name.clone(), col.name.clone()),
                    alias: Some(out_name.clone()),
                });
                output.push(FragmentColumn {
                    binding: b.name.clone(),
                    column: col.name.clone(),
                    out_name,
                    ty: col.ty,
                });
            }
        }
        if items.is_empty() {
            // A fragment must ship at least one column (e.g. for COUNT(*)
            // across a cross-group join); ship the first column.
            let b = &bindings[members[0]];
            let col = b.schema.column(0);
            let out_name = "c0".to_string();
            rewrite_map.insert(
                (b.name.clone(), col.name.to_ascii_lowercase()),
                (frag_table(gi), out_name.clone()),
            );
            items.push(SelectItem::Expr {
                expr: Expr::qcol(b.name.clone(), col.name.clone()),
                alias: Some(out_name.clone()),
            });
            output.push(FragmentColumn {
                binding: b.name.clone(),
                column: col.name.clone(),
                out_name,
                ty: col.ty,
            });
        }

        // FROM list over nicknames with binding aliases.
        let mut member_tables: Vec<TableRef> = members
            .iter()
            .map(|&bi| TableRef {
                name: bindings[bi].nickname.clone(),
                alias: Some(bindings[bi].name.clone()),
            })
            .collect();
        let from = member_tables.remove(0);
        let where_clause = combine_and(&local_conjuncts[gi]);

        fragments.push(FragmentSpec {
            index: gi as u32,
            nicknames: members
                .iter()
                .map(|&bi| bindings[bi].nickname.clone())
                .collect(),
            bindings: members
                .iter()
                .map(|&bi| bindings[bi].name.clone())
                .collect(),
            stmt: SelectStmt {
                distinct: false,
                items,
                from,
                from_rest: member_tables,
                joins: vec![],
                where_clause,
                group_by: vec![],
                having: None,
                order_by: vec![],
                limit: None,
            },
            candidate_servers: servers.clone(),
            output,
            full_pushdown: false,
        });
    }

    // Build the merge statement over __frag tables.
    let rw = |e: &Expr| rewrite_expr(e, &rewrite_map);
    let merge_items: Vec<SelectItem> = if wildcard && qualified.items.len() == 1 {
        // Expand * to all shipped columns, in fragment order.
        fragments
            .iter()
            .enumerate()
            .flat_map(|(gi, f)| {
                f.output.iter().map(move |c| SelectItem::Expr {
                    expr: Expr::qcol(frag_table(gi), c.out_name.clone()),
                    alias: Some(format!("{}_{}", c.binding, c.column)),
                })
            })
            .collect()
    } else {
        qualified
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => Err(QccError::Planning(
                    "mixed wildcard in multi-source aggregate query".into(),
                )),
                SelectItem::Expr { expr, alias } => Ok(SelectItem::Expr {
                    expr: rw(expr)?,
                    alias: alias.clone(),
                }),
            })
            .collect::<Result<_>>()?
    };

    let mut frag_tables: Vec<TableRef> = (0..fragments.len())
        .map(|i| TableRef::new(frag_table(i)))
        .collect();
    let merge_from = frag_tables.remove(0);
    let merge_where = cross_conjuncts
        .iter()
        .map(rw)
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .reduce(Expr::and);

    let merge_stmt = SelectStmt {
        distinct: qualified.distinct,
        items: merge_items,
        from: merge_from,
        from_rest: frag_tables,
        joins: vec![],
        where_clause: merge_where,
        group_by: qualified.group_by.iter().map(rw).collect::<Result<_>>()?,
        having: qualified.having.as_ref().map(rw).transpose()?,
        order_by: qualified
            .order_by
            .iter()
            .map(|o| {
                // ORDER BY may reference select aliases, which survive the
                // rewrite untouched; otherwise rewrite the columns.
                let expr = match rw(&o.expr) {
                    Ok(e) => e,
                    Err(_) => o.expr.clone(),
                };
                Ok(qcc_sql::OrderItem { expr, desc: o.desc })
            })
            .collect::<Result<Vec<_>>>()?,
        limit: qualified.limit,
    };

    Ok(DecomposedQuery {
        stmt: qualified,
        fragments,
        merge: MergeSpec::Merge {
            stmt: Box::new(merge_stmt),
        },
        template_signature,
    })
}

// ---------------------------------------------------------------------------
// Expression utilities
// ---------------------------------------------------------------------------

fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            split_and(left, out);
            split_and(right, out);
        }
        other => out.push(other.clone()),
    }
}

fn combine_and(preds: &[Expr]) -> Option<Expr> {
    preds.iter().cloned().reduce(Expr::and)
}

/// Rewrite fully-qualified column refs through the fragment output map.
fn rewrite_expr(expr: &Expr, map: &BTreeMap<(String, String), (String, String)>) -> Result<Expr> {
    Ok(match expr {
        Expr::Column {
            table: Some(t),
            name,
        } => {
            let key = (t.to_ascii_lowercase(), name.to_ascii_lowercase());
            let (frag, out) = map.get(&key).ok_or_else(|| {
                QccError::Planning(format!("column {t}.{name} not shipped by any fragment"))
            })?;
            Expr::qcol(frag.clone(), out.clone())
        }
        Expr::Column { table: None, name } => {
            return Err(QccError::Planning(format!(
                "unqualified column {name} after qualification"
            )))
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_expr(left, map)?),
            right: Box::new(rewrite_expr(right, map)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_expr(expr, map)?),
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(rewrite_expr(a, map)?)),
                None => None,
            },
            distinct: *distinct,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_expr(expr, map)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_expr(expr, map)?),
            list: list
                .iter()
                .map(|e| rewrite_expr(e, map))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_expr(expr, map)?),
            low: Box::new(rewrite_expr(low, map)?),
            high: Box::new(rewrite_expr(high, map)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_expr(expr, map)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
    })
}

/// Qualify every column reference in a statement via `resolve`.
fn qualify_stmt(
    stmt: &SelectStmt,
    resolve: &dyn Fn(Option<&str>, &str) -> Result<String>,
) -> Result<SelectStmt> {
    let q = |e: &Expr| qualify_expr(e, resolve);
    Ok(SelectStmt {
        distinct: stmt.distinct,
        items: stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => Ok(SelectItem::Wildcard),
                SelectItem::Expr { expr, alias } => Ok(SelectItem::Expr {
                    expr: q(expr)?,
                    alias: alias.clone(),
                }),
            })
            .collect::<Result<_>>()?,
        from: stmt.from.clone(),
        from_rest: stmt.from_rest.clone(),
        joins: stmt
            .joins
            .iter()
            .map(|j| {
                Ok(JoinClause {
                    table: j.table.clone(),
                    on: q(&j.on)?,
                })
            })
            .collect::<Result<_>>()?,
        where_clause: stmt.where_clause.as_ref().map(&q).transpose()?,
        group_by: stmt.group_by.iter().map(&q).collect::<Result<_>>()?,
        having: stmt.having.as_ref().map(&q).transpose()?,
        order_by: stmt
            .order_by
            .iter()
            .map(|o| {
                // Alias references stay unqualified (resolved later).
                let expr = match q(&o.expr) {
                    Ok(e) => e,
                    Err(QccError::UnknownColumn(_)) => o.expr.clone(),
                    Err(e) => return Err(e),
                };
                Ok(qcc_sql::OrderItem { expr, desc: o.desc })
            })
            .collect::<Result<Vec<_>>>()?,
        limit: stmt.limit,
    })
}

fn qualify_expr(
    expr: &Expr,
    resolve: &dyn Fn(Option<&str>, &str) -> Result<String>,
) -> Result<Expr> {
    Ok(match expr {
        Expr::Column { table, name } => {
            let binding = resolve(table.as_deref(), name)?;
            Expr::Column {
                table: Some(binding),
                name: name.clone(),
            }
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(qualify_expr(left, resolve)?),
            right: Box::new(qualify_expr(right, resolve)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(qualify_expr(expr, resolve)?),
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(qualify_expr(a, resolve)?)),
                None => None,
            },
            distinct: *distinct,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(qualify_expr(expr, resolve)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(qualify_expr(expr, resolve)?),
            list: list
                .iter()
                .map(|e| qualify_expr(e, resolve))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(qualify_expr(expr, resolve)?),
            low: Box::new(qualify_expr(low, resolve)?),
            high: Box::new(qualify_expr(high, resolve)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(qualify_expr(expr, resolve)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
    })
}

/// Statement signature with literals blanked out: identifies a query
/// *template* so calibration and round-robin state generalize over
/// parameter values (the paper runs "10 different query instances" per
/// type — same template, different parameters).
pub fn template_signature(stmt: &SelectStmt) -> String {
    let mut s = stmt.clone();
    fn blank(e: &mut Expr) {
        match e {
            Expr::Literal(v) => *v = Value::Str("?".into()),
            Expr::Column { .. } => {}
            Expr::Binary { left, right, .. } => {
                blank(left);
                blank(right);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => blank(expr),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    blank(a);
                }
            }
            Expr::InList { expr, list, .. } => {
                blank(expr);
                for i in list {
                    blank(i);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                blank(expr);
                blank(low);
                blank(high);
            }
            Expr::Like { expr, pattern, .. } => {
                blank(expr);
                *pattern = "?".into();
            }
        }
    }
    for item in &mut s.items {
        if let SelectItem::Expr { expr, .. } = item {
            blank(expr);
        }
    }
    for j in &mut s.joins {
        blank(&mut j.on);
    }
    if let Some(w) = &mut s.where_clause {
        blank(w);
    }
    for g in &mut s.group_by {
        blank(g);
    }
    if let Some(h) = &mut s.having {
        blank(h);
    }
    for o in &mut s.order_by {
        blank(&mut o.expr);
    }
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType};

    fn catalog() -> NicknameCatalog {
        let mut c = NicknameCatalog::new();
        c.define(
            "accounts",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("balance", DataType::Float),
                Column::new("branch_id", DataType::Int),
            ]),
        );
        c.define(
            "branches",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("city", DataType::Str),
            ]),
        );
        // accounts on S1 and replica R1; branches on S2 and replica R2.
        c.add_source("accounts", ServerId::new("S1"), "accounts")
            .unwrap();
        c.add_source("accounts", ServerId::new("R1"), "accounts")
            .unwrap();
        c.add_source("branches", ServerId::new("S2"), "branches")
            .unwrap();
        c.add_source("branches", ServerId::new("R2"), "branches")
            .unwrap();
        c
    }

    fn colocated_catalog() -> NicknameCatalog {
        let mut c = catalog();
        // Also host branches on S1 so single-fragment pushdown is possible.
        c.add_source("branches", ServerId::new("S1"), "branches")
            .unwrap();
        c
    }

    #[test]
    fn single_source_full_pushdown() {
        let d = decompose(
            "SELECT SUM(balance) FROM accounts WHERE id > 100",
            &catalog(),
        )
        .unwrap();
        assert_eq!(d.fragments.len(), 1);
        assert!(d.fragments[0].full_pushdown);
        assert!(matches!(d.merge, MergeSpec::Passthrough));
        assert_eq!(d.fragments[0].candidate_servers.len(), 2, "S1 and R1");
    }

    #[test]
    fn colocated_join_pushes_down() {
        let d = decompose(
            "SELECT a.id, b.city FROM accounts a JOIN branches b ON a.branch_id = b.id",
            &colocated_catalog(),
        )
        .unwrap();
        assert_eq!(d.fragments.len(), 1, "S1 hosts both");
        assert_eq!(d.fragments[0].candidate_servers, vec![ServerId::new("S1")]);
    }

    #[test]
    fn cross_source_join_splits() {
        let d = decompose(
            "SELECT a.id, b.city FROM accounts a JOIN branches b ON a.branch_id = b.id \
             WHERE a.balance > 50.0",
            &catalog(),
        )
        .unwrap();
        assert_eq!(d.fragments.len(), 2);
        let f0 = &d.fragments[0];
        assert!(!f0.full_pushdown);
        // Local predicate pushed into accounts fragment.
        assert!(f0.stmt.where_clause.is_some());
        let f0_sql = f0.stmt.to_string();
        assert!(f0_sql.contains("balance"), "{f0_sql}");
        // branch_id shipped for the merge join.
        assert!(f0.output.iter().any(|c| c.column == "branch_id"));
        // Merge statement joins the temp tables.
        match &d.merge {
            MergeSpec::Merge { stmt } => {
                let sql = stmt.to_string();
                assert!(sql.contains("__frag0"), "{sql}");
                assert!(sql.contains("__frag1"), "{sql}");
                assert!(sql.contains("="), "join predicate preserved: {sql}");
            }
            MergeSpec::Passthrough => panic!("expected merge"),
        }
    }

    #[test]
    fn fragment_translation_to_server_tables() {
        let mut c = catalog();
        c.add_source("accounts", ServerId::new("S9"), "acct_backup")
            .unwrap();
        let d = decompose("SELECT id FROM accounts", &c).unwrap();
        let sql = d.fragments[0]
            .sql_for_server(&c, &ServerId::new("S9"))
            .unwrap();
        assert!(sql.contains("acct_backup"), "{sql}");
        assert!(sql.contains("accounts"), "alias keeps binding name: {sql}");
    }

    #[test]
    fn aggregate_over_split_sources_runs_at_ii() {
        let d = decompose(
            "SELECT b.city, COUNT(*) AS n FROM accounts a JOIN branches b \
             ON a.branch_id = b.id GROUP BY b.city ORDER BY n DESC LIMIT 3",
            &catalog(),
        )
        .unwrap();
        assert_eq!(d.fragments.len(), 2);
        // Fragments carry no aggregation.
        for f in &d.fragments {
            assert!(f.stmt.group_by.is_empty());
            assert!(f.stmt.limit.is_none());
        }
        match &d.merge {
            MergeSpec::Merge { stmt } => {
                assert!(!stmt.group_by.is_empty());
                assert_eq!(stmt.limit, Some(3));
                assert_eq!(stmt.order_by.len(), 1);
            }
            MergeSpec::Passthrough => panic!("expected merge"),
        }
    }

    #[test]
    fn wildcard_ships_all_columns() {
        let d = decompose(
            "SELECT * FROM accounts a, branches b WHERE a.branch_id = b.id",
            &catalog(),
        )
        .unwrap();
        let total: usize = d.fragments.iter().map(|f| f.output.len()).sum();
        assert_eq!(total, 5, "3 account + 2 branch columns");
    }

    #[test]
    fn template_signature_blanks_literals() {
        let c = catalog();
        let a = decompose("SELECT id FROM accounts WHERE balance > 10.0", &c).unwrap();
        let b = decompose("SELECT id FROM accounts WHERE balance > 99.5", &c).unwrap();
        assert_eq!(a.template_signature, b.template_signature);
        let c2 = decompose("SELECT id FROM accounts WHERE balance < 10.0", &c).unwrap();
        assert_ne!(a.template_signature, c2.template_signature);
    }

    #[test]
    fn unknown_nickname_rejected() {
        assert!(decompose("SELECT * FROM nope", &catalog()).is_err());
    }

    #[test]
    fn ambiguous_column_rejected() {
        assert!(matches!(
            decompose(
                "SELECT id FROM accounts a, branches b WHERE a.branch_id = b.id",
                &catalog()
            ),
            Err(QccError::AmbiguousColumn(_))
        ));
    }
}
