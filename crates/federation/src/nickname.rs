//! Nickname definitions.
//!
//! A *nickname* is the local name of a remote table (paper §1). A nickname
//! may map to several sources — the original server and its replicas — and
//! the choice among them is exactly what load-aware routing decides.

use qcc_common::{QccError, Result, Schema, ServerId};
use std::collections::BTreeMap;

/// One source that can answer a nickname.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMapping {
    /// The remote server.
    pub server: ServerId,
    /// The table name at that server.
    pub remote_table: String,
}

/// A nickname: schema plus its sources.
#[derive(Debug, Clone)]
pub struct NicknameDef {
    /// Nickname (lowercased).
    pub name: String,
    /// The relational schema all sources of this nickname share.
    pub schema: Schema,
    /// Sources, in registration order (the first is the "origin", the
    /// rest replicas — the distinction only matters for display).
    pub sources: Vec<SourceMapping>,
}

/// The integrator's nickname catalog.
#[derive(Debug, Clone, Default)]
pub struct NicknameCatalog {
    defs: BTreeMap<String, NicknameDef>,
}

impl NicknameCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        NicknameCatalog::default()
    }

    /// Define a nickname with its schema. Replaces an existing definition.
    pub fn define(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into().to_ascii_lowercase();
        self.defs.insert(
            name.clone(),
            NicknameDef {
                name,
                schema,
                sources: Vec::new(),
            },
        );
    }

    /// Register a source (origin or replica) for a nickname.
    pub fn add_source(
        &mut self,
        nickname: &str,
        server: ServerId,
        remote_table: impl Into<String>,
    ) -> Result<()> {
        let def = self
            .defs
            .get_mut(&nickname.to_ascii_lowercase())
            .ok_or_else(|| QccError::UnknownTable(nickname.to_owned()))?;
        let mapping = SourceMapping {
            server,
            remote_table: remote_table.into().to_ascii_lowercase(),
        };
        if !def.sources.contains(&mapping) {
            def.sources.push(mapping);
        }
        Ok(())
    }

    /// Look up a nickname.
    pub fn get(&self, name: &str) -> Result<&NicknameDef> {
        self.defs
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| QccError::UnknownTable(name.to_owned()))
    }

    /// All nickname names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.defs.keys().map(String::as_str).collect()
    }

    /// Servers that host *all* of the given nicknames (candidate executors
    /// for a fragment touching exactly those nicknames).
    pub fn common_servers(&self, nicknames: &[&str]) -> Result<Vec<ServerId>> {
        let mut iter = nicknames.iter();
        let Some(first) = iter.next() else {
            return Ok(vec![]);
        };
        let mut servers: Vec<ServerId> = self
            .get(first)?
            .sources
            .iter()
            .map(|s| s.server.clone())
            .collect();
        for nick in iter {
            let def = self.get(nick)?;
            servers.retain(|s| def.sources.iter().any(|m| &m.server == s));
        }
        servers.dedup();
        Ok(servers)
    }

    /// The remote table name for `nickname` at `server`.
    pub fn remote_table(&self, nickname: &str, server: &ServerId) -> Result<&str> {
        let def = self.get(nickname)?;
        def.sources
            .iter()
            .find(|m| &m.server == server)
            .map(|m| m.remote_table.as_str())
            .ok_or_else(|| {
                QccError::Planning(format!(
                    "nickname {nickname} has no source at server {server}"
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int)])
    }

    fn catalog() -> NicknameCatalog {
        let mut c = NicknameCatalog::new();
        c.define("accounts", schema());
        c.define("branches", schema());
        c.add_source("accounts", ServerId::new("S1"), "acct")
            .unwrap();
        c.add_source("accounts", ServerId::new("R1"), "acct")
            .unwrap();
        c.add_source("branches", ServerId::new("S1"), "branch")
            .unwrap();
        c.add_source("branches", ServerId::new("S2"), "branch")
            .unwrap();
        c
    }

    #[test]
    fn define_and_lookup() {
        let c = catalog();
        assert_eq!(c.get("ACCOUNTS").unwrap().sources.len(), 2);
        assert!(c.get("missing").is_err());
        assert_eq!(c.names(), vec!["accounts", "branches"]);
    }

    #[test]
    fn common_servers_intersects() {
        let c = catalog();
        let common = c.common_servers(&["accounts", "branches"]).unwrap();
        assert_eq!(common, vec![ServerId::new("S1")]);
        let only_acct = c.common_servers(&["accounts"]).unwrap();
        assert_eq!(only_acct.len(), 2);
    }

    #[test]
    fn remote_table_translation() {
        let c = catalog();
        assert_eq!(
            c.remote_table("accounts", &ServerId::new("R1")).unwrap(),
            "acct"
        );
        assert!(c.remote_table("accounts", &ServerId::new("S2")).is_err());
    }

    #[test]
    fn duplicate_source_ignored() {
        let mut c = catalog();
        c.add_source("accounts", ServerId::new("S1"), "acct")
            .unwrap();
        assert_eq!(c.get("accounts").unwrap().sources.len(), 2);
    }

    #[test]
    fn add_source_unknown_nickname_errors() {
        let mut c = catalog();
        assert!(c.add_source("nope", ServerId::new("S1"), "t").is_err());
    }
}
