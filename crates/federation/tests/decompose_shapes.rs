//! Decomposition shape tests over richer placements: three-way splits,
//! partial co-location, and merge-statement structure.

use qcc_common::{Column, DataType, Schema, ServerId};
use qcc_federation::{decompose, MergeSpec, NicknameCatalog};

fn schema(cols: &[(&str, DataType)]) -> Schema {
    Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
}

/// Five nicknames spread over four servers:
///   H0: a, b      (co-located pair)
///   H1: c
///   H2: d
///   H3: e, a      (replica of a)
fn catalog() -> NicknameCatalog {
    let mut cat = NicknameCatalog::new();
    cat.define("a", schema(&[("id", DataType::Int), ("x", DataType::Int)]));
    cat.define(
        "b",
        schema(&[("id", DataType::Int), ("a_id", DataType::Int)]),
    );
    cat.define(
        "c",
        schema(&[("id", DataType::Int), ("b_id", DataType::Int)]),
    );
    cat.define(
        "d",
        schema(&[("id", DataType::Int), ("c_id", DataType::Int)]),
    );
    cat.define(
        "e",
        schema(&[("id", DataType::Int), ("tag", DataType::Str)]),
    );
    for (nick, srv) in [
        ("a", "H0"),
        ("b", "H0"),
        ("c", "H1"),
        ("d", "H2"),
        ("e", "H3"),
        ("a", "H3"),
    ] {
        cat.add_source(nick, ServerId::new(srv), nick).unwrap();
    }
    cat
}

#[test]
fn three_way_split_produces_three_fragments() {
    let d = decompose(
        "SELECT COUNT(*) FROM b JOIN c ON c.b_id = b.id JOIN d ON d.c_id = c.id",
        &catalog(),
    )
    .unwrap();
    assert_eq!(d.fragments.len(), 3, "b@H0, c@H1, d@H2");
    match &d.merge {
        MergeSpec::Merge { stmt } => {
            let sql = stmt.to_string();
            assert!(sql.contains("__frag0") && sql.contains("__frag1") && sql.contains("__frag2"));
            assert!(sql.contains("COUNT(*)"), "aggregation stays at II: {sql}");
        }
        MergeSpec::Passthrough => panic!("expected a merge"),
    }
}

#[test]
fn colocated_pair_stays_one_fragment_in_a_split_query() {
    let d = decompose(
        "SELECT a.x, c.id FROM a JOIN b ON b.a_id = a.id JOIN c ON c.b_id = b.id",
        &catalog(),
    )
    .unwrap();
    // a and b share H0 → one fragment; c is alone.
    assert_eq!(d.fragments.len(), 2);
    let f0 = &d.fragments[0];
    assert_eq!(f0.nicknames, vec!["a", "b"]);
    // The a⋈b join executes remotely: its conjunct is in the fragment.
    let sql = f0.stmt.to_string();
    assert!(sql.contains("a_id"), "intra-group join pushed down: {sql}");
}

#[test]
fn replica_does_not_merge_unrelated_groups() {
    // a is on H0 and H3; e only on H3. A query over a and e CAN co-locate
    // on H3 — grouping should discover that.
    let d = decompose("SELECT COUNT(*) FROM a JOIN e ON e.id = a.id", &catalog()).unwrap();
    assert_eq!(d.fragments.len(), 1, "H3 hosts both");
    assert_eq!(d.fragments[0].candidate_servers, vec![ServerId::new("H3")]);
    assert!(d.fragments[0].full_pushdown);
}

#[test]
fn cross_fragment_predicates_stay_at_the_integrator() {
    let d = decompose(
        "SELECT b.id FROM b JOIN c ON c.b_id = b.id WHERE b.a_id > 5 AND c.id < b.id",
        &catalog(),
    )
    .unwrap();
    assert_eq!(d.fragments.len(), 2);
    // Local conjunct pushed, cross-fragment non-equi conjunct kept.
    let frag_b = d
        .fragments
        .iter()
        .find(|f| f.nicknames.contains(&"b".to_string()))
        .unwrap();
    assert!(
        frag_b.stmt.to_string().contains("a_id > 5"),
        "{}",
        frag_b.stmt
    );
    match &d.merge {
        MergeSpec::Merge { stmt } => {
            let sql = stmt.to_string();
            assert!(sql.contains('<'), "non-equi cross predicate at II: {sql}");
        }
        MergeSpec::Passthrough => panic!(),
    }
}

#[test]
fn fragment_ships_only_needed_columns() {
    let d = decompose("SELECT b.id FROM b JOIN c ON c.b_id = b.id", &catalog()).unwrap();
    let frag_c = d
        .fragments
        .iter()
        .find(|f| f.nicknames.contains(&"c".to_string()))
        .unwrap();
    // c contributes only its join key; its id column is not referenced.
    assert_eq!(frag_c.output.len(), 1);
    assert_eq!(frag_c.output[0].column, "b_id");
}

#[test]
fn order_and_limit_stay_at_the_integrator_for_splits() {
    let d = decompose(
        "SELECT b.id FROM b JOIN c ON c.b_id = b.id ORDER BY b.id DESC LIMIT 7",
        &catalog(),
    )
    .unwrap();
    for f in &d.fragments {
        assert!(f.stmt.order_by.is_empty());
        assert!(f.stmt.limit.is_none());
    }
    match &d.merge {
        MergeSpec::Merge { stmt } => {
            assert_eq!(stmt.limit, Some(7));
            assert_eq!(stmt.order_by.len(), 1);
            assert!(stmt.order_by[0].desc);
        }
        MergeSpec::Passthrough => panic!(),
    }
}
