//! The fragment/replica catalog: replication-aware source selection for
//! federations in the hundreds of servers.
//!
//! The paper's experiments route over three servers, where enumerating
//! every (fragment, server) pair at compile time is free. At 100–500
//! servers the EXPLAIN fan-out itself becomes the bottleneck: a query
//! touching two fully-replicated fragments would dispatch 2 × N EXPLAIN
//! probes before any routing decision. This crate inserts a catalog
//! between decomposition and compilation that knows, for every table
//! fragment, its replica set — `(server, cost hint, freshness epoch)` —
//! and prunes that set *before* the fan-out:
//!
//! 1. **Dominance pruning**: a replica that is strictly worse on both
//!    calibrated cost and reliability band than a surviving sibling can
//!    never be chosen by the cost-based optimizer, so consulting it is
//!    pure waste (the replicated-fragment pruning of Montoya et al.).
//! 2. **Replication-bound capping**: of the survivors, only the best
//!    `bound` replicas per fragment set (ordered by calibrated cost,
//!    then band, then server id) are consulted. Because the ordering is
//!    consistent with the federation's own effective-cost ordering, the
//!    eventual winner always survives the cap — pruning changes how many
//!    servers are consulted, never which plan wins.
//!
//! Selection is **fail-open**: candidates the catalog has no registration
//! for are passed through untouched, so a world that never registers
//! fragments behaves exactly as if the catalog were absent.
//!
//! Registration and epoch bumps happen on virtual time and are journaled
//! (`catalog_register`, `catalog_deregister`, `catalog_epoch`); epochs
//! let churn (crash/restore cycles) invalidate only the affected
//! fragments' cached plans instead of a server's whole cache.
//!
//! Determinism: all state lives in ordered maps, selection is a pure
//! function of (registrations, health, candidate order), and every
//! mutation is coordinator-side. The catalog never reads a clock — time
//! is always injected by the caller.

use parking_lot::Mutex;
use qcc_common::{Obs, ServerId, SimTime};
use std::collections::BTreeMap;

/// Reliability band of a healthy, error-free replica.
pub const HEALTHY_BAND: u8 = 0;

/// Reliability band of a replica believed down (worst possible).
pub const DOWN_BAND: u8 = u8::MAX;

/// Routing health of one server, as pushed by the calibration layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Health {
    /// Multiplier on the server's base cost hints (calibration ×
    /// reliability inflation; infinite while the server is down).
    pub cost_factor: f64,
    /// Discrete reliability band: [`HEALTHY_BAND`] for a clean history,
    /// higher as recent errors accumulate, [`DOWN_BAND`] while down.
    pub band: u8,
}

impl Default for Health {
    fn default() -> Self {
        Health {
            cost_factor: 1.0,
            band: HEALTHY_BAND,
        }
    }
}

/// One replica of a fragment, as reported by [`ReplicaCatalog::replicas`].
#[derive(Debug, Clone, PartialEq)]
pub struct Replica {
    /// The hosting server.
    pub server: ServerId,
    /// Base per-fragment cost hint (typically 1 / server speed); scaled
    /// by the server's [`Health::cost_factor`] at selection time.
    pub cost_hint: f64,
    /// Freshness epoch: bumped whenever the host's availability churns,
    /// so consumers can detect that plans compiled against an older
    /// epoch are stale.
    pub epoch: u64,
    /// Virtual time of registration.
    pub registered_at: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct ReplicaMeta {
    cost_hint: f64,
    epoch: u64,
    registered_at: SimTime,
}

#[derive(Debug, Default)]
struct State {
    /// fragment (table nickname) → hosting server → replica metadata.
    fragments: BTreeMap<String, BTreeMap<ServerId, ReplicaMeta>>,
    /// Last pushed health per server (absent = healthy default).
    health: BTreeMap<ServerId, Health>,
}

/// The deterministic fragment/replica catalog.
#[derive(Debug)]
pub struct ReplicaCatalog {
    state: Mutex<State>,
    /// Replication bound: the maximum number of replicas consulted per
    /// fragment set (0 = unbounded; dominance pruning still applies).
    bound: usize,
    obs: Obs,
}

impl ReplicaCatalog {
    /// Empty catalog with the given replication bound (0 = unbounded).
    pub fn new(bound: usize) -> Self {
        ReplicaCatalog {
            state: Mutex::new(State::default()),
            bound,
            obs: Obs::off(),
        }
    }

    /// Attach an observability handle (registration/epoch journal events).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The replication bound (0 = unbounded).
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Register a replica of `fragment` on `server` at virtual time `at`.
    /// Re-registering updates the cost hint in place (no duplicate entry,
    /// no second journal event). Coordinator-side only.
    pub fn register(&self, fragment: &str, server: ServerId, cost_hint: f64, at: SimTime) {
        let fragment = fragment.to_ascii_lowercase();
        let fresh = {
            let mut st = self.state.lock();
            let per_fragment = st.fragments.entry(fragment.clone()).or_default();
            match per_fragment.get_mut(&server) {
                Some(meta) => {
                    meta.cost_hint = cost_hint;
                    false
                }
                None => {
                    per_fragment.insert(
                        server.clone(),
                        ReplicaMeta {
                            cost_hint,
                            epoch: 0,
                            registered_at: at,
                        },
                    );
                    true
                }
            }
        };
        if fresh {
            self.obs.counter_inc("catalog_replicas_total", &[]);
            self.obs.event(
                at,
                "catalog_register",
                vec![
                    ("fragment", fragment.into()),
                    ("server", server.as_str().into()),
                    ("cost_hint", cost_hint.into()),
                ],
            );
        }
    }

    /// Remove the replica of `fragment` on `server`. Returns whether a
    /// registration was actually removed. Coordinator-side only.
    pub fn deregister(&self, fragment: &str, server: &ServerId, at: SimTime) -> bool {
        let fragment = fragment.to_ascii_lowercase();
        let removed = {
            let mut st = self.state.lock();
            match st.fragments.get_mut(&fragment) {
                Some(per_fragment) => {
                    let removed = per_fragment.remove(server).is_some();
                    if per_fragment.is_empty() {
                        st.fragments.remove(&fragment);
                    }
                    removed
                }
                None => false,
            }
        };
        if removed {
            self.obs.event(
                at,
                "catalog_deregister",
                vec![
                    ("fragment", fragment.into()),
                    ("server", server.as_str().into()),
                ],
            );
        }
        removed
    }

    /// Push routing health for `server` (calibration × reliability). No
    /// journal event — this is the hot path, refreshed between batches.
    pub fn update_health(&self, server: &ServerId, cost_factor: f64, band: u8) {
        self.state
            .lock()
            .health
            .insert(server.clone(), Health { cost_factor, band });
    }

    /// The last pushed health of `server` (healthy default if never set).
    pub fn health(&self, server: &ServerId) -> Health {
        self.state
            .lock()
            .health
            .get(server)
            .copied()
            .unwrap_or_default()
    }

    /// Bump the freshness epoch of every fragment replicated on `server`
    /// (availability churn: the server crashed or restored). Returns the
    /// affected fragment names, journaling one `catalog_epoch` event.
    /// Coordinator-side only.
    pub fn bump_epoch(&self, server: &ServerId, at: SimTime, reason: &'static str) -> Vec<String> {
        let affected: Vec<String> = {
            let mut st = self.state.lock();
            let mut affected = Vec::new();
            for (fragment, per_fragment) in st.fragments.iter_mut() {
                if let Some(meta) = per_fragment.get_mut(server) {
                    meta.epoch += 1;
                    affected.push(fragment.clone());
                }
            }
            affected
        };
        if !affected.is_empty() {
            self.obs
                .counter_inc("catalog_epoch_bumps_total", &[("server", server.as_str())]);
            self.obs.event(
                at,
                "catalog_epoch",
                vec![
                    ("server", server.as_str().into()),
                    ("reason", reason.into()),
                    ("fragments", affected.len().into()),
                ],
            );
        }
        affected
    }

    /// Fragments hosted on `server`, sorted by name.
    pub fn fragments_on(&self, server: &ServerId) -> Vec<String> {
        let st = self.state.lock();
        st.fragments
            .iter()
            .filter(|(_, per_fragment)| per_fragment.contains_key(server))
            .map(|(fragment, _)| fragment.clone())
            .collect()
    }

    /// The replica set of `fragment`, sorted by server id.
    pub fn replicas(&self, fragment: &str) -> Vec<Replica> {
        let fragment = fragment.to_ascii_lowercase();
        let st = self.state.lock();
        st.fragments
            .get(&fragment)
            .map(|per_fragment| {
                per_fragment
                    .iter()
                    .map(|(server, meta)| Replica {
                        server: server.clone(),
                        cost_hint: meta.cost_hint,
                        epoch: meta.epoch,
                        registered_at: meta.registered_at,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Replica siblings of `fragment` other than `server` (the
    /// alternates a hedge or reroute can target), sorted by server id.
    pub fn siblings(&self, fragment: &str, server: &ServerId) -> Vec<ServerId> {
        self.replicas(fragment)
            .into_iter()
            .map(|r| r.server)
            .filter(|s| s != server)
            .collect()
    }

    /// Current freshness epoch of `fragment` on `server`, if registered.
    pub fn epoch(&self, fragment: &str, server: &ServerId) -> Option<u64> {
        let fragment = fragment.to_ascii_lowercase();
        let st = self.state.lock();
        st.fragments
            .get(&fragment)
            .and_then(|per_fragment| per_fragment.get(server))
            .map(|meta| meta.epoch)
    }

    /// Number of registered fragments.
    pub fn len(&self) -> usize {
        self.state.lock().fragments.len()
    }

    /// True when no fragment is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Source selection: prune `candidates` for a fragment touching all
    /// of `fragments`, preserving the original candidate order.
    ///
    /// A candidate is *scoreable* when every fragment has a registered
    /// replica on it; unscoreable candidates fail open (kept untouched,
    /// exempt from the bound) so partially-registered worlds degrade to
    /// the unpruned behaviour. Scoreable candidates are scored
    /// `(calibrated cost, band)` where cost = Σ fragment hints × the
    /// server's health factor, then:
    ///
    /// 1. a candidate strictly worse than some sibling on *both* cost
    ///    and band is dominated and dropped;
    /// 2. the survivors are capped to the best `bound` by
    ///    `(cost, band, server id)` — an ordering consistent with the
    ///    federation's effective-cost ordering, so the cheapest replica
    ///    (the eventual winner) always survives.
    pub fn select_sources(&self, fragments: &[String], candidates: &[ServerId]) -> Vec<ServerId> {
        struct Scored {
            index: usize,
            cost: f64,
            band: u8,
        }
        let st = self.state.lock();
        let mut scored: Vec<Scored> = Vec::new();
        let mut fail_open: Vec<usize> = Vec::new();
        for (index, server) in candidates.iter().enumerate() {
            let mut cost = 0.0;
            let mut known = !fragments.is_empty();
            for fragment in fragments {
                match st
                    .fragments
                    .get(&fragment.to_ascii_lowercase())
                    .and_then(|per_fragment| per_fragment.get(server))
                {
                    Some(meta) => cost += meta.cost_hint,
                    None => {
                        known = false;
                        break;
                    }
                }
            }
            if !known {
                fail_open.push(index);
                continue;
            }
            let health = st.health.get(server).copied().unwrap_or_default();
            scored.push(Scored {
                index,
                cost: cost * health.cost_factor,
                band: health.band,
            });
        }
        drop(st);

        // Dominance: strictly worse on BOTH axes than some sibling.
        let dominated: Vec<bool> = scored
            .iter()
            .map(|c| {
                scored
                    .iter()
                    .any(|other| other.band < c.band && other.cost < c.cost)
            })
            .collect();
        let mut survivors: Vec<&Scored> = scored
            .iter()
            .zip(&dominated)
            .filter(|(_, &dominated)| !dominated)
            .map(|(c, _)| c)
            .collect();

        // Cap to the best `bound` by (cost, band, candidate order). The
        // candidate order tie-break equals server-id order whenever the
        // caller passes candidates sorted by id (the decomposer does).
        survivors.sort_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then(a.band.cmp(&b.band))
                .then(a.index.cmp(&b.index))
        });
        if self.bound > 0 {
            survivors.truncate(self.bound);
        }

        let mut keep: Vec<usize> = fail_open;
        keep.extend(survivors.iter().map(|c| c.index));
        keep.sort_unstable();
        keep.into_iter()
            .map(|index| candidates[index].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<ServerId> {
        names.iter().map(ServerId::new).collect()
    }

    fn catalog_of(bound: usize, hints: &[(&str, &str, f64)]) -> ReplicaCatalog {
        let c = ReplicaCatalog::new(bound);
        for (fragment, server, hint) in hints {
            c.register(fragment, ServerId::new(server), *hint, SimTime::ZERO);
        }
        c
    }

    #[test]
    fn register_deregister_roundtrip() {
        let obs = Obs::new();
        let c = ReplicaCatalog::new(3).with_obs(obs.clone());
        let t = SimTime::from_millis(5.0);
        c.register("big_a", ServerId::new("S1"), 1.0, t);
        c.register("big_a", ServerId::new("S2"), 0.5, t);
        c.register("big_a", ServerId::new("S1"), 2.0, t); // update, no dup
        assert_eq!(c.len(), 1);
        let reps = c.replicas("big_a");
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].server, ServerId::new("S1"));
        assert_eq!(reps[0].cost_hint, 2.0);
        assert_eq!(obs.events_of("catalog_register").len(), 2);
        assert_eq!(obs.counter_value("catalog_replicas_total", &[]), 2);

        assert!(c.deregister("big_a", &ServerId::new("S1"), t));
        assert!(!c.deregister("big_a", &ServerId::new("S1"), t));
        assert_eq!(c.replicas("big_a").len(), 1);
        assert_eq!(obs.events_of("catalog_deregister").len(), 1);
    }

    #[test]
    fn selection_caps_to_cheapest_bound() {
        let c = catalog_of(
            2,
            &[
                ("t", "S1", 1.0),
                ("t", "S2", 0.5),
                ("t", "S3", 0.8),
                ("t", "S4", 2.0),
            ],
        );
        let kept = c.select_sources(&["t".into()], &ids(&["S1", "S2", "S3", "S4"]));
        assert_eq!(kept, ids(&["S2", "S3"]), "two cheapest, original order");
    }

    #[test]
    fn dominated_replica_is_pruned_before_the_cap() {
        // S3 is strictly worse than S1 on both cost and band; S2 is
        // cheaper but in a worse band (not dominated, survives).
        let c = catalog_of(0, &[("t", "S1", 1.0), ("t", "S2", 0.5), ("t", "S3", 3.0)]);
        c.update_health(&ServerId::new("S2"), 1.0, 2);
        c.update_health(&ServerId::new("S3"), 1.0, 2);
        let kept = c.select_sources(&["t".into()], &ids(&["S1", "S2", "S3"]));
        assert_eq!(kept, ids(&["S1", "S2"]));
    }

    #[test]
    fn cheapest_replica_always_survives() {
        let c = catalog_of(1, &[("t", "S1", 0.9), ("t", "S2", 0.2), ("t", "S3", 0.4)]);
        let kept = c.select_sources(&["t".into()], &ids(&["S1", "S2", "S3"]));
        assert_eq!(kept, ids(&["S2"]));
    }

    #[test]
    fn health_factor_reorders_selection() {
        let c = catalog_of(1, &[("t", "S1", 1.0), ("t", "S2", 0.5)]);
        // S2 is nominally cheaper, but calibration learned it is 4× slow.
        c.update_health(&ServerId::new("S2"), 4.0, HEALTHY_BAND);
        let kept = c.select_sources(&["t".into()], &ids(&["S1", "S2"]));
        assert_eq!(kept, ids(&["S1"]));
    }

    #[test]
    fn multi_fragment_cost_is_summed() {
        let c = catalog_of(
            1,
            &[
                ("a", "S1", 0.1),
                ("a", "S2", 1.0),
                ("b", "S1", 1.0),
                ("b", "S2", 0.2),
            ],
        );
        // S2 wins on the summed (a + b) hint: 1.2 vs 1.1 for S1 — no,
        // S1 = 1.1 is cheaper. Check the sum actually decides.
        let kept = c.select_sources(&["a".into(), "b".into()], &ids(&["S1", "S2"]));
        assert_eq!(kept, ids(&["S1"]));
    }

    #[test]
    fn unregistered_candidates_fail_open() {
        let c = catalog_of(1, &[("t", "S1", 1.0), ("t", "S2", 0.5)]);
        // S9 hosts nothing the catalog knows of: it must pass through
        // even though the bound is 1.
        let kept = c.select_sources(&["t".into()], &ids(&["S1", "S2", "S9"]));
        assert_eq!(kept, ids(&["S2", "S9"]));
        // Entirely unknown fragment: nothing is scoreable, everything
        // passes through.
        let kept = c.select_sources(&["nope".into()], &ids(&["S1", "S2"]));
        assert_eq!(kept, ids(&["S1", "S2"]));
    }

    #[test]
    fn epoch_bump_touches_only_hosted_fragments() {
        let obs = Obs::new();
        let c = ReplicaCatalog::new(3).with_obs(obs.clone());
        let t = SimTime::from_millis(1.0);
        c.register("a", ServerId::new("S1"), 1.0, t);
        c.register("b", ServerId::new("S1"), 1.0, t);
        c.register("b", ServerId::new("S2"), 1.0, t);
        c.register("c", ServerId::new("S2"), 1.0, t);

        let affected = c.bump_epoch(&ServerId::new("S1"), t, "down");
        assert_eq!(affected, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(c.epoch("a", &ServerId::new("S1")), Some(1));
        assert_eq!(c.epoch("b", &ServerId::new("S1")), Some(1));
        assert_eq!(c.epoch("b", &ServerId::new("S2")), Some(0));
        assert_eq!(c.epoch("c", &ServerId::new("S2")), Some(0));
        let events = obs.events_of("catalog_epoch");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].str_field("reason"), Some("down"));
        // A server hosting nothing bumps nothing and journals nothing.
        assert!(c.bump_epoch(&ServerId::new("S9"), t, "down").is_empty());
        assert_eq!(obs.events_of("catalog_epoch").len(), 1);
    }

    #[test]
    fn fragments_on_and_siblings() {
        let c = catalog_of(0, &[("a", "S1", 1.0), ("b", "S1", 1.0), ("b", "S2", 1.0)]);
        assert_eq!(
            c.fragments_on(&ServerId::new("S1")),
            vec!["a".to_string(), "b".to_string()]
        );
        assert_eq!(c.fragments_on(&ServerId::new("S2")), vec!["b".to_string()]);
        assert_eq!(c.siblings("b", &ServerId::new("S1")), ids(&["S2"]));
        assert!(c.siblings("a", &ServerId::new("S1")).is_empty());
    }

    #[test]
    fn nickname_lookup_is_case_insensitive() {
        let c = catalog_of(0, &[("Big_A", "S1", 1.0)]);
        assert_eq!(c.replicas("BIG_A").len(), 1);
        assert_eq!(
            c.select_sources(&["big_a".into()], &ids(&["S1"])),
            ids(&["S1"])
        );
    }
}
