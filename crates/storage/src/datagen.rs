//! Seeded synthetic data generation.
//!
//! The paper populated the DB2 sample schema "with randomly generated
//! data", with small tables around 1 000 tuples and large tables around
//! 100 000 (§5). These generators reproduce that setup deterministically.

use crate::table::Table;
use qcc_common::{Column, DataType, Pcg32, Row, Schema, Value};

/// How to generate values for one column.
#[derive(Debug, Clone)]
pub enum ColumnSpec {
    /// Sequential 0..n primary key.
    Serial {
        /// Column name.
        name: String,
    },
    /// Uniform integer in `[lo, hi)`.
    IntUniform {
        /// Column name.
        name: String,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// Zipf-ish skewed integer in `[0, n)`: value v has weight 1/(v+1).
    IntSkewed {
        /// Column name.
        name: String,
        /// Number of distinct values.
        n: i64,
    },
    /// Uniform float in `[lo, hi)`.
    FloatUniform {
        /// Column name.
        name: String,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// String drawn uniformly from a pool of `pool_size` distinct tags.
    StrPool {
        /// Column name.
        name: String,
        /// Number of distinct strings.
        pool_size: u64,
    },
}

impl ColumnSpec {
    /// The generated column's name.
    pub fn name(&self) -> &str {
        match self {
            ColumnSpec::Serial { name }
            | ColumnSpec::IntUniform { name, .. }
            | ColumnSpec::IntSkewed { name, .. }
            | ColumnSpec::FloatUniform { name, .. }
            | ColumnSpec::StrPool { name, .. } => name,
        }
    }

    /// The generated column's type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnSpec::Serial { .. }
            | ColumnSpec::IntUniform { .. }
            | ColumnSpec::IntSkewed { .. } => DataType::Int,
            ColumnSpec::FloatUniform { .. } => DataType::Float,
            ColumnSpec::StrPool { .. } => DataType::Str,
        }
    }

    fn generate(&self, row_idx: u64, rng: &mut Pcg32) -> Value {
        match self {
            ColumnSpec::Serial { .. } => Value::Int(row_idx as i64),
            ColumnSpec::IntUniform { lo, hi, .. } => Value::Int(rng.range_i64(*lo, *hi)),
            ColumnSpec::IntSkewed { n, .. } => {
                // Inverse-CDF sampling of weights 1/(v+1): harmonic skew.
                let u = rng.next_f64();
                let hn = (*n as f64).ln() + 0.5772;
                let target = u * hn;
                let v = (target.exp() - 1.0).clamp(0.0, (*n - 1) as f64);
                Value::Int(v as i64)
            }
            ColumnSpec::FloatUniform { lo, hi, .. } => Value::Float(rng.range_f64(*lo, *hi)),
            ColumnSpec::StrPool { pool_size, .. } => {
                let tag = rng.range_u64(0, (*pool_size).max(1));
                Value::Str(format!("tag_{tag:06}"))
            }
        }
    }
}

/// Specification of a full synthetic table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Number of rows to generate.
    pub rows: u64,
    /// Column generators.
    pub columns: Vec<ColumnSpec>,
}

impl TableSpec {
    /// Construct a spec.
    pub fn new(name: impl Into<String>, rows: u64, columns: Vec<ColumnSpec>) -> Self {
        TableSpec {
            name: name.into(),
            rows,
            columns,
        }
    }

    /// The schema this spec generates.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Column::new(c.name(), c.data_type()))
                .collect(),
        )
    }

    /// Generate the table. The same `(spec, seed)` always produces the same
    /// data; the table name does not influence the stream, so replicas built
    /// from the same spec and seed hold identical data (as the paper's
    /// replicated tables must).
    pub fn generate(&self, seed: u64) -> Table {
        let mut rng = Pcg32::seed_from(seed);
        let mut table = Table::new(self.name.clone(), self.schema());
        for r in 0..self.rows {
            let row = Row::new(
                self.columns
                    .iter()
                    .map(|c| c.generate(r, &mut rng))
                    .collect(),
            );
            table.insert(row).expect("generated row matches schema");
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableSpec {
        TableSpec::new(
            "items",
            500,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "qty".into(),
                    lo: 0,
                    hi: 100,
                },
                ColumnSpec::FloatUniform {
                    name: "price".into(),
                    lo: 1.0,
                    hi: 50.0,
                },
                ColumnSpec::StrPool {
                    name: "cat".into(),
                    pool_size: 8,
                },
                ColumnSpec::IntSkewed {
                    name: "pop".into(),
                    n: 1000,
                },
            ],
        )
    }

    #[test]
    fn deterministic_for_seed() {
        let a = spec().generate(7);
        let b = spec().generate(7);
        assert_eq!(a.rows(), b.rows());
        let c = spec().generate(8);
        assert_ne!(a.rows(), c.rows(), "different seed differs");
    }

    #[test]
    fn replica_semantics_name_independent() {
        let mut replica_spec = spec();
        replica_spec.name = "items_replica".into();
        let original = spec().generate(42);
        let replica = replica_spec.generate(42);
        assert_eq!(original.rows(), replica.rows());
    }

    #[test]
    fn row_count_and_schema() {
        let t = spec().generate(1);
        assert_eq!(t.row_count(), 500);
        assert_eq!(t.schema().len(), 5);
        assert_eq!(t.schema().column(0).name, "id");
    }

    #[test]
    fn serial_is_sequential() {
        let t = spec().generate(1);
        assert_eq!(t.rows()[0].get(0), &Value::Int(0));
        assert_eq!(t.rows()[499].get(0), &Value::Int(499));
    }

    #[test]
    fn uniform_bounds_respected() {
        let t = spec().generate(3);
        for row in t.rows() {
            let qty = row.get(1).as_i64().unwrap();
            assert!((0..100).contains(&qty));
            let price = row.get(2).as_f64().unwrap();
            assert!((1.0..50.0).contains(&price));
        }
    }

    #[test]
    fn skewed_prefers_small_values() {
        let t = spec().generate(5);
        let below_100 = t
            .rows()
            .iter()
            .filter(|r| r.get(4).as_i64().unwrap() < 100)
            .count();
        // Harmonic skew should put well over half the mass below 100/1000.
        assert!(below_100 > 250, "got {below_100} of 500");
    }

    #[test]
    fn string_pool_size_respected() {
        let t = spec().generate(9);
        let distinct: std::collections::HashSet<_> = t
            .rows()
            .iter()
            .map(|r| r.get(3).as_str().unwrap().to_owned())
            .collect();
        assert!(distinct.len() <= 8);
        assert!(distinct.len() >= 6, "should see most of the pool");
    }
}
