//! Per-server catalogs: tables, their statistics, and their indexes.

use crate::index::Index;
use crate::stats::TableStats;
use crate::table::Table;
use qcc_common::{QccError, Result};
use std::collections::BTreeMap;

/// A table plus everything the optimizer knows about it.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The data.
    pub table: Table,
    /// Optimizer statistics (refreshed by [`Catalog::analyze`]).
    pub stats: TableStats,
    /// Secondary indexes.
    pub indexes: Vec<Index>,
}

/// A named collection of tables, as hosted by one remote server — or by the
/// QCC's *simulated federated system*, whose catalogs hold statistics and
/// virtual (empty) tables without the actual data (paper §2).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, analyzing it immediately. Replaces any previous
    /// table with the same name (case-insensitive).
    pub fn register(&mut self, table: Table) {
        let stats = TableStats::analyze(&table);
        self.entries.insert(
            table.name().to_ascii_lowercase(),
            CatalogEntry {
                table,
                stats,
                indexes: Vec::new(),
            },
        );
    }

    /// Register a *virtual* table: schema and statistics but no rows.
    /// Virtual tables support EXPLAIN (cost estimation) but not execution —
    /// they are the substance of the simulated federated system.
    pub fn register_virtual(&mut self, table: Table, stats: TableStats) {
        self.entries.insert(
            table.name().to_ascii_lowercase(),
            CatalogEntry {
                table,
                stats,
                indexes: Vec::new(),
            },
        );
    }

    /// Build and attach an index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let entry = self.entry_mut(table)?;
        // Replace an existing index on the same column.
        entry
            .indexes
            .retain(|i| !i.column_name().eq_ignore_ascii_case(column));
        let idx = Index::build(&entry.table, column)?;
        entry.indexes.push(idx);
        Ok(())
    }

    /// Look up a table entry.
    pub fn entry(&self, name: &str) -> Result<&CatalogEntry> {
        self.entries
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| QccError::UnknownTable(name.to_owned()))
    }

    /// Mutable lookup.
    pub fn entry_mut(&mut self, name: &str) -> Result<&mut CatalogEntry> {
        self.entries
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| QccError::UnknownTable(name.to_owned()))
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&name.to_ascii_lowercase())
    }

    /// All table names (lowercased), sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Re-collect statistics for one table (after updates) and rebuild its
    /// indexes so they reflect the new data.
    pub fn analyze(&mut self, name: &str) -> Result<()> {
        let entry = self.entry_mut(name)?;
        entry.stats = TableStats::analyze(&entry.table);
        let columns: Vec<String> = entry
            .indexes
            .iter()
            .map(|i| i.column_name().to_owned())
            .collect();
        entry.indexes.clear();
        for c in columns {
            let idx = Index::build(&entry.table, &c)?;
            entry.indexes.push(idx);
        }
        Ok(())
    }

    /// Derive the data-less twin of this catalog: same schemas, same
    /// statistics, no rows. This is what the QCC's simulated federated
    /// system runs EXPLAIN against.
    pub fn to_virtual(&self) -> Catalog {
        let mut out = Catalog::new();
        for entry in self.entries.values() {
            let empty = Table::new(entry.table.name(), entry.table.schema().clone());
            out.register_virtual(empty, entry.stats.clone());
            // Virtual indexes: rebuilt empty, but recorded so that the
            // optimizer still sees the access path existing.
            for idx in &entry.indexes {
                // Ignore failures: the column exists by construction.
                let _ = out.create_index(entry.table.name(), idx.column_name());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType, Row, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(
            "Orders",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("total", DataType::Float),
            ]),
        );
        for i in 0..50i64 {
            t.insert(Row::new(vec![Value::Int(i), Value::Float(i as f64 * 1.5)]))
                .unwrap();
        }
        c.register(t);
        c
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let c = catalog();
        assert!(c.contains("orders"));
        assert!(c.contains("ORDERS"));
        assert_eq!(c.entry("orders").unwrap().stats.row_count, 50);
        assert!(matches!(c.entry("nope"), Err(QccError::UnknownTable(_))));
    }

    #[test]
    fn create_index_and_rebuild_on_analyze() {
        let mut c = catalog();
        c.create_index("orders", "id").unwrap();
        assert_eq!(c.entry("orders").unwrap().indexes.len(), 1);
        // Mutate the data, re-analyze, index should reflect new rows.
        c.entry_mut("orders")
            .unwrap()
            .table
            .insert(Row::new(vec![Value::Int(999), Value::Float(0.0)]))
            .unwrap();
        c.analyze("orders").unwrap();
        let e = c.entry("orders").unwrap();
        assert_eq!(e.stats.row_count, 51);
        assert_eq!(e.indexes[0].lookup_eq(&Value::Int(999)).len(), 1);
    }

    #[test]
    fn duplicate_index_replaced() {
        let mut c = catalog();
        c.create_index("orders", "id").unwrap();
        c.create_index("orders", "id").unwrap();
        assert_eq!(c.entry("orders").unwrap().indexes.len(), 1);
    }

    #[test]
    fn virtual_twin_keeps_stats_drops_rows() {
        let mut c = catalog();
        c.create_index("orders", "id").unwrap();
        let v = c.to_virtual();
        let e = v.entry("orders").unwrap();
        assert_eq!(e.table.row_count(), 0, "no data in the virtual catalog");
        assert_eq!(e.stats.row_count, 50, "statistics preserved");
        assert_eq!(e.indexes.len(), 1, "access paths preserved");
    }
}
