//! Table statistics for cardinality estimation.
//!
//! The per-server optimizers estimate selectivities from these statistics;
//! because the statistics are summaries (not the data), the estimates carry
//! realistic errors — exactly the situation the paper's calibrator assumes
//! ("assuming that the original cost estimates are valid", §3.1).

use crate::table::Table;
use qcc_common::Value;
use std::collections::HashSet;

/// Number of buckets in the equi-depth histograms.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-depth histogram over a numeric column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive), ascending. The lower bound of the
    /// first bucket is `min`.
    bounds: Vec<f64>,
    /// Rows per bucket.
    depth: f64,
    /// Column minimum.
    min: f64,
    /// Column maximum.
    max: f64,
    /// Total non-null rows the histogram summarizes.
    total: f64,
}

impl Histogram {
    /// Build an equi-depth histogram from (unsorted) numeric samples.
    /// Returns `None` when there are no non-null numeric values.
    pub fn build(mut values: Vec<f64>) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let total = values.len() as f64;
        let buckets = HISTOGRAM_BUCKETS.min(values.len());
        let depth = total / buckets as f64;
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = ((b as f64 * depth).ceil() as usize - 1).min(values.len() - 1);
            bounds.push(values[idx]);
        }
        Some(Histogram {
            bounds,
            depth,
            min: values[0],
            max: *values.last().expect("non-empty"),
            total,
        })
    }

    /// Estimated fraction of rows with value ≤ `x`.
    pub fn selectivity_le(&self, x: f64) -> f64 {
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let mut rows = 0.0;
        let mut lower = self.min;
        for &upper in &self.bounds {
            if x >= upper {
                rows += self.depth;
                lower = upper;
            } else {
                // Linear interpolation inside the bucket.
                let span = upper - lower;
                let frac = if span <= 0.0 { 1.0 } else { (x - lower) / span };
                rows += self.depth * frac.clamp(0.0, 1.0);
                break;
            }
        }
        (rows / self.total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows in `[lo, hi]`.
    pub fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let hi_sel = hi.map_or(1.0, |h| self.selectivity_le(h));
        let lo_sel = lo.map_or(0.0, |l| self.selectivity_le(l));
        (hi_sel - lo_sel).clamp(0.0, 1.0)
    }

    /// Column minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Column maximum.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Histogram over numeric values (absent for string columns).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Selectivity of `col = literal`.
    pub fn selectivity_eq(&self, total_rows: u64) -> f64 {
        if total_rows == 0 {
            return 0.0;
        }
        if self.distinct == 0 {
            return 0.0;
        }
        // Uniformity assumption over distinct values.
        let non_null = (total_rows - self.null_count) as f64;
        (non_null / self.distinct as f64) / total_rows as f64
    }
}

/// Statistics for a whole table, as collected by `ANALYZE`.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count at analyze time.
    pub row_count: u64,
    /// Average row width in bytes.
    pub avg_row_width: f64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics from a table (a full scan; fine for a simulator).
    pub fn analyze(table: &Table) -> TableStats {
        let ncols = table.schema().len();
        let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); ncols];
        let mut nulls = vec![0u64; ncols];
        let mut numerics: Vec<Vec<f64>> = vec![Vec::new(); ncols];
        for row in table.rows() {
            for (i, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                    continue;
                }
                distinct[i].insert(v.clone());
                if let Some(x) = v.as_f64() {
                    numerics[i].push(x);
                }
            }
        }
        let columns = (0..ncols)
            .map(|i| ColumnStats {
                distinct: distinct[i].len() as u64,
                null_count: nulls[i],
                histogram: Histogram::build(std::mem::take(&mut numerics[i])),
            })
            .collect();
        TableStats {
            row_count: table.row_count() as u64,
            avg_row_width: table.avg_row_width(),
            columns,
        }
    }

    /// Stats for an empty table with the given column count (placeholder
    /// used by the simulated federated system's *virtual tables*, which
    /// keep statistics without any data — paper §2).
    pub fn virtual_table(row_count: u64, avg_row_width: f64, columns: Vec<ColumnStats>) -> Self {
        TableStats {
            row_count,
            avg_row_width,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType, Row, Schema};

    fn int_table(values: &[i64]) -> Table {
        let mut t = Table::new("t", Schema::new(vec![Column::new("v", DataType::Int)]));
        for &v in values {
            t.insert(Row::new(vec![Value::Int(v)])).unwrap();
        }
        t
    }

    #[test]
    fn histogram_uniform_range_estimates() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).unwrap();
        // P(v <= 499) should be about one half.
        let sel = h.selectivity_le(499.0);
        assert!((sel - 0.5).abs() < 0.05, "sel = {sel}");
        assert_eq!(h.selectivity_le(-1.0), 0.0);
        assert_eq!(h.selectivity_le(2000.0), 1.0);
    }

    #[test]
    fn histogram_skewed_data() {
        // 90% of values are 0, the rest spread over [1, 100].
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::build(values).unwrap();
        let sel0 = h.selectivity_le(0.0);
        assert!(sel0 > 0.8, "mass at zero should dominate, got {sel0}");
    }

    #[test]
    fn histogram_range_selectivity() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).unwrap();
        let sel = h.selectivity_range(Some(250.0), Some(750.0));
        assert!((sel - 0.5).abs() < 0.06, "sel = {sel}");
        let open = h.selectivity_range(None, Some(100.0));
        assert!((open - 0.1).abs() < 0.05, "sel = {open}");
    }

    #[test]
    fn histogram_empty_is_none() {
        assert!(Histogram::build(vec![]).is_none());
    }

    #[test]
    fn analyze_counts_distinct_and_nulls() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("s", DataType::Str),
            ]),
        );
        t.insert(Row::new(vec![Value::Int(1), Value::from("x")]))
            .unwrap();
        t.insert(Row::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        t.insert(Row::new(vec![Value::Int(2), Value::from("y")]))
            .unwrap();
        let stats = TableStats::analyze(&t);
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns[0].distinct, 2);
        assert_eq!(stats.columns[0].null_count, 0);
        assert_eq!(stats.columns[1].distinct, 2);
        assert_eq!(stats.columns[1].null_count, 1);
        assert!(stats.columns[0].histogram.is_some());
        assert!(
            stats.columns[1].histogram.is_none(),
            "strings: no histogram"
        );
    }

    #[test]
    fn eq_selectivity_uniform() {
        let t = int_table(&(0..100).collect::<Vec<_>>());
        let stats = TableStats::analyze(&t);
        let sel = stats.columns[0].selectivity_eq(stats.row_count);
        assert!((sel - 0.01).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_empty_table() {
        let t = int_table(&[]);
        let stats = TableStats::analyze(&t);
        assert_eq!(stats.columns[0].selectivity_eq(0), 0.0);
    }
}
