//! Table statistics for cardinality estimation.
//!
//! The per-server optimizers estimate selectivities from these statistics;
//! because the statistics are summaries (not the data), the estimates carry
//! realistic errors — exactly the situation the paper's calibrator assumes
//! ("assuming that the original cost estimates are valid", §3.1).

use crate::table::Table;
use qcc_common::{CellRef, ColumnSummary, Value};
use std::collections::HashSet;

/// Number of buckets in the equi-depth histograms.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-depth histogram over a numeric column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive), ascending. The lower bound of the
    /// first bucket is `min`.
    bounds: Vec<f64>,
    /// Rows per bucket.
    depth: f64,
    /// Column minimum.
    min: f64,
    /// Column maximum.
    max: f64,
    /// Total non-null rows the histogram summarizes.
    total: f64,
}

impl Histogram {
    /// Build an equi-depth histogram from (unsorted) numeric samples.
    /// Returns `None` when there are no non-null numeric values.
    pub fn build(mut values: Vec<f64>) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let total = values.len() as f64;
        let buckets = HISTOGRAM_BUCKETS.min(values.len());
        let depth = total / buckets as f64;
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = ((b as f64 * depth).ceil() as usize - 1).min(values.len() - 1);
            bounds.push(values[idx]);
        }
        Some(Histogram {
            bounds,
            depth,
            min: values[0],
            max: *values.last().expect("non-empty"),
            total,
        })
    }

    /// Estimated fraction of rows with value ≤ `x`.
    pub fn selectivity_le(&self, x: f64) -> f64 {
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let mut rows = 0.0;
        let mut lower = self.min;
        for &upper in &self.bounds {
            if x >= upper {
                rows += self.depth;
                lower = upper;
            } else {
                // Linear interpolation inside the bucket.
                let span = upper - lower;
                let frac = if span <= 0.0 { 1.0 } else { (x - lower) / span };
                rows += self.depth * frac.clamp(0.0, 1.0);
                break;
            }
        }
        (rows / self.total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows in `[lo, hi]`.
    pub fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let hi_sel = hi.map_or(1.0, |h| self.selectivity_le(h));
        let lo_sel = lo.map_or(0.0, |l| self.selectivity_le(l));
        (hi_sel - lo_sel).clamp(0.0, 1.0)
    }

    /// Column minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Column maximum.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Statistics for a single column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Histogram over numeric values (absent for string columns).
    pub histogram: Option<Histogram>,
    /// Smallest non-null value (from the columnar zone maps).
    pub min: Option<Value>,
    /// Largest non-null value (from the columnar zone maps).
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Selectivity of `col = literal`.
    pub fn selectivity_eq(&self, total_rows: u64) -> f64 {
        if total_rows == 0 {
            return 0.0;
        }
        if self.distinct == 0 {
            return 0.0;
        }
        // Uniformity assumption over distinct values.
        let non_null = (total_rows - self.null_count) as f64;
        (non_null / self.distinct as f64) / total_rows as f64
    }
}

/// Statistics for a whole table, as collected by `ANALYZE`.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count at analyze time.
    pub row_count: u64,
    /// Average row width in bytes.
    pub avg_row_width: f64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics from a table (a full scan; fine for a simulator).
    ///
    /// The scan is column-major over the table's chunks, visiting each
    /// column's cells in row order — so distinct counts, null counts, and
    /// histograms are identical to what the old row-major analyze produced.
    pub fn analyze(table: &Table) -> TableStats {
        let ncols = table.schema().len();
        let columns = (0..ncols)
            .map(|i| {
                let mut distinct: HashSet<Value> = HashSet::new();
                let mut nulls = 0u64;
                let mut numerics: Vec<f64> = Vec::new();
                let mut summary = ColumnSummary::default();
                for chunk in table.chunks() {
                    summary.merge(&chunk.summaries()[i]);
                    let vector = &chunk.columns()[i];
                    for r in 0..chunk.len() {
                        let cell = vector.cell(r);
                        if cell.is_null() {
                            nulls += 1;
                            continue;
                        }
                        distinct.insert(cell.to_value());
                        if let Some(x) = cell.as_f64() {
                            numerics.push(x);
                        }
                    }
                }
                ColumnStats {
                    distinct: distinct.len() as u64,
                    null_count: nulls,
                    histogram: Histogram::build(numerics),
                    min: summary.min,
                    max: summary.max,
                }
            })
            .collect();
        TableStats {
            row_count: table.row_count() as u64,
            avg_row_width: table.avg_row_width(),
            columns,
        }
    }

    /// Stats for an empty table with the given column count (placeholder
    /// used by the simulated federated system's *virtual tables*, which
    /// keep statistics without any data — paper §2).
    pub fn virtual_table(row_count: u64, avg_row_width: f64, columns: Vec<ColumnStats>) -> Self {
        TableStats {
            row_count,
            avg_row_width,
            columns,
        }
    }
}

/// Slots in the linear-counting bitmap used by
/// [`ColumnQuickStats::collect`]'s distinct estimator.
const LINEAR_COUNTING_SLOTS: usize = 4096;

/// Cheap per-column summary read straight off the columnar chunks, without
/// materializing any `Value`s: zone-map min / max / null count plus a
/// linear-counting distinct estimate (hash every non-null cell into a
/// fixed bitmap and invert the fill rate). Groundwork for
/// selectivity-estimation refinements that should not pay a full
/// `ANALYZE`-style exact-distinct pass.
#[derive(Debug, Clone)]
pub struct ColumnQuickStats {
    /// Smallest non-null value.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Number of NULLs.
    pub null_count: u64,
    /// Estimated number of distinct non-null values (exact up to hash
    /// collisions for cardinalities well below the bitmap size).
    pub distinct_estimate: u64,
}

impl ColumnQuickStats {
    /// Collect quick stats for column `col`, or `None` when the column
    /// index is out of range.
    pub fn collect(table: &Table, col: usize) -> Option<ColumnQuickStats> {
        if col >= table.schema().len() {
            return None;
        }
        let mut summary = ColumnSummary::default();
        let mut slots = vec![false; LINEAR_COUNTING_SLOTS];
        let mut non_null = 0u64;
        for chunk in table.chunks() {
            summary.merge(&chunk.summaries()[col]);
            let vector = &chunk.columns()[col];
            for r in 0..chunk.len() {
                let cell = vector.cell(r);
                if cell.is_null() {
                    continue;
                }
                non_null += 1;
                slots[(hash_cell(cell) % LINEAR_COUNTING_SLOTS as u64) as usize] = true;
            }
        }
        let filled = slots.iter().filter(|b| **b).count();
        let m = LINEAR_COUNTING_SLOTS as f64;
        let zero = (LINEAR_COUNTING_SLOTS - filled).max(1) as f64;
        // Linear counting: n ≈ m · ln(m / z), capped by the non-null count.
        let estimate = (m * (m / zero).ln()).round() as u64;
        Some(ColumnQuickStats {
            min: summary.min,
            max: summary.max,
            null_count: summary.null_count,
            distinct_estimate: estimate.min(non_null),
        })
    }
}

/// FNV-1a over a type-tagged byte encoding of the cell. Mirrors the
/// equivalence classes of `Value`'s `Hash` (integral floats hash like the
/// equal integer) so `Int(3)` and `Float(3.0)` count as one distinct value.
fn hash_cell(cell: CellRef<'_>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match cell {
        CellRef::Null => eat(&[0]),
        CellRef::Int(i) => {
            eat(&[1]);
            eat(&i.to_le_bytes());
        }
        CellRef::Float(f) => {
            if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                eat(&[1]);
                eat(&(f as i64).to_le_bytes());
            } else {
                eat(&[2]);
                eat(&f.to_bits().to_le_bytes());
            }
        }
        CellRef::Str(s) => {
            eat(&[3]);
            eat(s.as_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType, Row, Schema};

    fn int_table(values: &[i64]) -> Table {
        let mut t = Table::new("t", Schema::new(vec![Column::new("v", DataType::Int)]));
        for &v in values {
            t.insert(Row::new(vec![Value::Int(v)])).unwrap();
        }
        t
    }

    #[test]
    fn histogram_uniform_range_estimates() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).unwrap();
        // P(v <= 499) should be about one half.
        let sel = h.selectivity_le(499.0);
        assert!((sel - 0.5).abs() < 0.05, "sel = {sel}");
        assert_eq!(h.selectivity_le(-1.0), 0.0);
        assert_eq!(h.selectivity_le(2000.0), 1.0);
    }

    #[test]
    fn histogram_skewed_data() {
        // 90% of values are 0, the rest spread over [1, 100].
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::build(values).unwrap();
        let sel0 = h.selectivity_le(0.0);
        assert!(sel0 > 0.8, "mass at zero should dominate, got {sel0}");
    }

    #[test]
    fn histogram_range_selectivity() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).unwrap();
        let sel = h.selectivity_range(Some(250.0), Some(750.0));
        assert!((sel - 0.5).abs() < 0.06, "sel = {sel}");
        let open = h.selectivity_range(None, Some(100.0));
        assert!((open - 0.1).abs() < 0.05, "sel = {open}");
    }

    #[test]
    fn histogram_empty_is_none() {
        assert!(Histogram::build(vec![]).is_none());
    }

    #[test]
    fn analyze_counts_distinct_and_nulls() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("s", DataType::Str),
            ]),
        );
        t.insert(Row::new(vec![Value::Int(1), Value::from("x")]))
            .unwrap();
        t.insert(Row::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        t.insert(Row::new(vec![Value::Int(2), Value::from("y")]))
            .unwrap();
        let stats = TableStats::analyze(&t);
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns[0].distinct, 2);
        assert_eq!(stats.columns[0].null_count, 0);
        assert_eq!(stats.columns[1].distinct, 2);
        assert_eq!(stats.columns[1].null_count, 1);
        assert!(stats.columns[0].histogram.is_some());
        assert!(
            stats.columns[1].histogram.is_none(),
            "strings: no histogram"
        );
    }

    #[test]
    fn eq_selectivity_uniform() {
        let t = int_table(&(0..100).collect::<Vec<_>>());
        let stats = TableStats::analyze(&t);
        let sel = stats.columns[0].selectivity_eq(stats.row_count);
        assert!((sel - 0.01).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_empty_table() {
        let t = int_table(&[]);
        let stats = TableStats::analyze(&t);
        assert_eq!(stats.columns[0].selectivity_eq(0), 0.0);
    }

    #[test]
    fn analyze_exposes_min_max_from_zone_maps() {
        let t = int_table(&[7, -3, 12, 12]);
        let stats = TableStats::analyze(&t);
        assert_eq!(stats.columns[0].min, Some(Value::Int(-3)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(12)));
        let empty = TableStats::analyze(&int_table(&[]));
        assert_eq!(empty.columns[0].min, None);
        assert_eq!(empty.columns[0].max, None);
    }

    #[test]
    fn quick_stats_min_max_nulls() {
        let mut t = Table::new("t", Schema::new(vec![Column::new("v", DataType::Int)]));
        for v in [5i64, 1, 9] {
            t.insert(Row::new(vec![Value::Int(v)])).unwrap();
        }
        t.insert(Row::new(vec![Value::Null])).unwrap();
        let q = ColumnQuickStats::collect(&t, 0).unwrap();
        assert_eq!(q.min, Some(Value::Int(1)));
        assert_eq!(q.max, Some(Value::Int(9)));
        assert_eq!(q.null_count, 1);
        assert!(ColumnQuickStats::collect(&t, 1).is_none(), "out of range");
    }

    #[test]
    fn quick_stats_distinct_estimate_tracks_cardinality() {
        // A serial column: estimate should land close to the true count.
        let t = int_table(&(0..500).collect::<Vec<_>>());
        let q = ColumnQuickStats::collect(&t, 0).unwrap();
        let est = q.distinct_estimate as f64;
        assert!(
            (est - 500.0).abs() / 500.0 < 0.1,
            "estimate {est} should be within 10% of 500"
        );
        // A constant column: exactly one distinct value.
        let t = int_table(&vec![42; 1000]);
        let q = ColumnQuickStats::collect(&t, 0).unwrap();
        assert_eq!(q.distinct_estimate, 1);
        // Empty column: zero.
        let q = ColumnQuickStats::collect(&int_table(&[]), 0).unwrap();
        assert_eq!(q.distinct_estimate, 0);
    }

    #[test]
    fn quick_stats_merge_int_and_integral_float() {
        // Int(3) and Float(3.0) are the same value in this type system.
        let mut t = Table::new("t", Schema::new(vec![Column::new("v", DataType::Float)]));
        t.insert(Row::new(vec![Value::Int(3)])).unwrap();
        t.insert(Row::new(vec![Value::Float(3.0)])).unwrap();
        let q = ColumnQuickStats::collect(&t, 0).unwrap();
        assert_eq!(q.distinct_estimate, 1);
    }
}
