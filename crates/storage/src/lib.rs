//! In-memory storage layer for the simulated remote servers.
//!
//! Each remote server in the federation owns a [`Catalog`] of [`Table`]s.
//! Tables carry [`stats::TableStats`] (row counts, per-column distinct
//! values, min/max, equi-depth histograms) that the per-server optimizer
//! uses for cardinality estimation, and optional secondary [`index::Index`]es
//! that enable cheap highly-selective access paths (the reason the paper's
//! QT3 stays cheap on a loaded server).

pub mod catalog;
pub mod datagen;
pub mod index;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use datagen::{ColumnSpec, TableSpec};
pub use index::Index;
pub use stats::{ColumnQuickStats, ColumnStats, Histogram, TableStats};
pub use table::{apply_update_batch, Table, TableChunk};
