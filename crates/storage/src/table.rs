//! Columnar in-memory tables.
//!
//! A table stores its rows as a sequence of column chunks ([`BATCH_ROWS`]
//! rows each on the insert path; adopted batches keep their own size).
//! Each chunk carries per-column [`ColumnSummary`] zone maps (min / max /
//! null count) that the vectorized scan uses to skip or bulk-accept whole
//! chunks. `rows()` materializes the legacy `Row` view for row-oriented
//! boundaries (the naive reference evaluator, tests, result display).

use qcc_common::{
    ColumnBatch, ColumnSummary, ColumnVector, DataType, QccError, Result, Row, Schema, Value,
    BATCH_ROWS,
};
use std::sync::Arc;

/// One chunk of a table: `Arc`-shared column vectors plus zone maps.
#[derive(Debug, Clone)]
pub struct TableChunk {
    columns: Vec<Arc<ColumnVector>>,
    summaries: Vec<ColumnSummary>,
    len: usize,
}

impl TableChunk {
    fn empty(schema: &Schema) -> TableChunk {
        TableChunk {
            columns: schema
                .columns()
                .iter()
                .map(|c| Arc::new(ColumnVector::new_for(Some(c.ty))))
                .collect(),
            summaries: vec![ColumnSummary::default(); schema.len()],
            len: 0,
        }
    }

    /// The shared column vectors.
    pub fn columns(&self) -> &[Arc<ColumnVector>] {
        &self.columns
    }

    /// Per-column zone maps, in schema order.
    pub fn summaries(&self) -> &[ColumnSummary] {
        &self.summaries
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy view of the chunk as a batch.
    pub fn to_batch(&self) -> ColumnBatch {
        ColumnBatch::new(self.columns.clone(), self.len)
    }
}

/// An in-memory base table: a schema plus columnar chunks.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    chunks: Vec<TableChunk>,
    /// Starting global row position of each chunk (parallel to `chunks`).
    starts: Vec<usize>,
    row_count: usize,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            chunks: Vec::new(),
            starts: Vec::new(),
            row_count: 0,
        }
    }

    /// Build a table by adopting pre-built column batches without copying
    /// cell data: each batch's `Arc`-shared columns become one chunk. Every
    /// batch must match the schema's arity and column types (NULL anywhere;
    /// exact `Int` values are acceptable in FLOAT columns, mirroring the
    /// row-level insert rules).
    pub fn from_batches(
        name: impl Into<String>,
        schema: Schema,
        batches: Vec<ColumnBatch>,
    ) -> Result<Table> {
        let mut table = Table::new(name, schema);
        for batch in batches {
            if batch.n_rows() == 0 {
                continue;
            }
            table.adopt_batch(batch)?;
        }
        Ok(table)
    }

    fn adopt_batch(&mut self, batch: ColumnBatch) -> Result<()> {
        if batch.n_cols() != self.schema.len() {
            return Err(QccError::TypeMismatch(format!(
                "table {} expects {} columns, batch has {}",
                self.name,
                self.schema.len(),
                batch.n_cols()
            )));
        }
        let mut summaries = Vec::with_capacity(batch.n_cols());
        for (i, col) in batch.columns().iter().enumerate() {
            let expected = self.schema.column(i).ty;
            self.check_column(col, expected, i)?;
            summaries.push(col.summarize());
        }
        let len = batch.n_rows();
        self.starts.push(self.row_count);
        self.chunks.push(TableChunk {
            columns: batch.columns().to_vec(),
            summaries,
            len,
        });
        self.row_count += len;
        Ok(())
    }

    fn check_column(&self, col: &ColumnVector, expected: DataType, idx: usize) -> Result<()> {
        let ok = match (col, expected) {
            (ColumnVector::Int { .. }, DataType::Int | DataType::Float) => true,
            (ColumnVector::Float { .. }, DataType::Float) => true,
            (ColumnVector::Str { .. }, DataType::Str) => true,
            (ColumnVector::Mixed(vals), e) => {
                match vals.iter().find(|v| {
                    !matches!(
                        (v.data_type(), e),
                        (None, _) | (Some(DataType::Int), DataType::Float)
                    ) && v.data_type() != Some(e)
                }) {
                    None => true,
                    Some(v) => {
                        return Err(self.column_type_error(idx, expected, v.data_type()));
                    }
                }
            }
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            let got = match col {
                ColumnVector::Int { .. } => Some(DataType::Int),
                ColumnVector::Float { .. } => Some(DataType::Float),
                ColumnVector::Str { .. } => Some(DataType::Str),
                ColumnVector::Mixed(_) => None,
            };
            Err(self.column_type_error(idx, expected, got))
        }
    }

    fn column_type_error(&self, idx: usize, expected: DataType, got: Option<DataType>) -> QccError {
        let got = got.map_or_else(|| "mixed".to_string(), |t| t.to_string());
        QccError::TypeMismatch(format!(
            "table {} column {} expects {expected}, got {got}",
            self.name,
            self.schema.column(idx).name,
        ))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (columns are unqualified at the base-table level).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The columnar chunks, in row order.
    pub fn chunks(&self) -> &[TableChunk] {
        &self.chunks
    }

    /// Materialized `Row` compatibility view of the whole table.
    pub fn rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.row_count);
        for chunk in &self.chunks {
            for r in 0..chunk.len {
                out.push(Row::new(chunk.columns.iter().map(|c| c.value(r)).collect()));
            }
        }
        out
    }

    /// Materialize the row at a global position.
    pub fn row_at(&self, pos: usize) -> Option<Row> {
        let (chunk, off) = self.locate(pos)?;
        let chunk = &self.chunks[chunk];
        Some(Row::new(
            chunk.columns.iter().map(|c| c.value(off)).collect(),
        ))
    }

    /// Map a global row position to `(chunk index, offset within chunk)`.
    pub fn locate(&self, pos: usize) -> Option<(usize, usize)> {
        if pos >= self.row_count {
            return None;
        }
        let chunk = self.starts.partition_point(|&s| s <= pos) - 1;
        Some((chunk, pos - self.starts[chunk]))
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Append a row after validating its arity and types. NULL is accepted
    /// in any column.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.validate(&row)?;
        if self.chunks.last().is_none_or(|c| c.len >= BATCH_ROWS) {
            self.starts.push(self.row_count);
            self.chunks.push(TableChunk::empty(&self.schema));
        }
        if let Some(chunk) = self.chunks.last_mut() {
            for (i, v) in row.into_values().into_iter().enumerate() {
                chunk.summaries[i].observe(&v);
                Arc::make_mut(&mut chunk.columns[i]).push(v);
            }
            chunk.len += 1;
        }
        self.row_count += 1;
        Ok(())
    }

    /// Append many rows, validating each.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Total byte width of all rows (approximation used for transfer-cost
    /// accounting and stats).
    pub fn byte_size(&self) -> usize {
        self.chunks
            .iter()
            .flat_map(|c| c.columns.iter())
            .map(|c| c.byte_size() as usize)
            .sum()
    }

    /// Average row width in bytes (the schema-width default when empty).
    pub fn avg_row_width(&self) -> f64 {
        if self.row_count == 0 {
            // Assume 8 bytes per column when there is no data to measure.
            return (self.schema.len() * 8) as f64;
        }
        self.byte_size() as f64 / self.row_count as f64
    }

    fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(QccError::TypeMismatch(format!(
                "table {} expects {} columns, row has {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let expected = self.schema.column(i).ty;
            match (v.data_type(), expected) {
                (None, _) => {}
                (Some(t), e) if t == e => {}
                // Ints are acceptable where floats are expected.
                (Some(DataType::Int), DataType::Float) => {}
                (Some(t), e) => {
                    return Err(QccError::TypeMismatch(format!(
                        "table {} column {} expects {e}, got {t} ({v})",
                        self.name,
                        self.schema.column(i).name,
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Simulated "update workload" hook: touching a fraction of a table's rows.
/// Used by the experiments' heavy-update-load phases; the data itself is
/// perturbed in place so that repeated runs stay realistic.
pub fn apply_update_batch(table: &mut Table, fraction: f64, bump: i64) -> usize {
    let n = ((table.row_count as f64) * fraction.clamp(0.0, 1.0)) as usize;
    let int_cols: Vec<usize> = table
        .schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ty == DataType::Int)
        .map(|(i, _)| i)
        .collect();
    if int_cols.is_empty() {
        return 0;
    }
    let mut dirty: Vec<(usize, usize)> = Vec::new();
    for r in 0..n.min(table.row_count) {
        let col = int_cols[r % int_cols.len()];
        let Some((ci, off)) = table.locate(r) else {
            break;
        };
        let vector = Arc::make_mut(&mut table.chunks[ci].columns[col]);
        let bumped = match vector {
            ColumnVector::Int { data, nulls } => {
                if nulls[off] {
                    false
                } else {
                    data[off] = data[off].wrapping_add(bump);
                    true
                }
            }
            ColumnVector::Mixed(vals) => {
                if let Value::Int(v) = vals[off] {
                    vals[off] = Value::Int(v.wrapping_add(bump));
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if bumped && !dirty.contains(&(ci, col)) {
            dirty.push((ci, col));
        }
    }
    for (ci, col) in dirty {
        table.chunks[ci].summaries[col] = table.chunks[ci].columns[col].summarize();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::Column;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Str),
                Column::new("score", DataType::Float),
            ]),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = table();
        t.insert(Row::new(vec![
            Value::Int(1),
            Value::from("a"),
            Value::Float(0.5),
        ]))
        .unwrap();
        t.insert(Row::new(vec![Value::Int(2), Value::Null, Value::Null]))
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.rows()[1].get(1), &Value::Null);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        let err = t.insert(Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, QccError::TypeMismatch(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = table();
        let err = t
            .insert(Row::new(vec![
                Value::from("oops"),
                Value::from("a"),
                Value::Float(0.5),
            ]))
            .unwrap_err();
        assert!(matches!(err, QccError::TypeMismatch(_)));
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = table();
        t.insert(Row::new(vec![
            Value::Int(1),
            Value::from("a"),
            Value::Int(3),
        ]))
        .unwrap();
        // The exact Int value must survive the columnar round trip.
        assert_eq!(t.rows()[0].get(2), &Value::Int(3));
    }

    #[test]
    fn avg_row_width_empty_fallback() {
        let t = table();
        assert_eq!(t.avg_row_width(), 24.0);
    }

    #[test]
    fn update_batch_touches_rows() {
        let mut t = table();
        for i in 0..10 {
            t.insert(Row::new(vec![
                Value::Int(i),
                Value::from("x"),
                Value::Float(0.0),
            ]))
            .unwrap();
        }
        let touched = apply_update_batch(&mut t, 0.5, 100);
        assert_eq!(touched, 5);
        assert_eq!(t.rows()[0].get(0), &Value::Int(100));
        assert_eq!(
            t.rows()[5].get(0),
            &Value::Int(5),
            "beyond fraction untouched"
        );
        // Zone maps follow the mutation.
        assert_eq!(
            t.chunks()[0].summaries()[0].max,
            Some(Value::Int(104)),
            "summary recomputed after update"
        );
    }

    #[test]
    fn chunking_splits_at_batch_rows() {
        let mut t = Table::new("t", Schema::new(vec![Column::new("v", DataType::Int)]));
        for i in 0..(BATCH_ROWS as i64 + 5) {
            t.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        assert_eq!(t.chunks().len(), 2);
        assert_eq!(t.chunks()[0].len(), BATCH_ROWS);
        assert_eq!(t.chunks()[1].len(), 5);
        assert_eq!(t.locate(BATCH_ROWS + 2), Some((1, 2)));
        assert_eq!(
            t.row_at(BATCH_ROWS + 2).unwrap().get(0).as_i64(),
            Some(BATCH_ROWS as i64 + 2)
        );
        assert_eq!(
            t.chunks()[0].summaries()[0].max,
            Some(Value::Int(BATCH_ROWS as i64 - 1))
        );
    }

    #[test]
    fn from_batches_adopts_columns_without_copy() {
        let mut src = Table::new("src", Schema::new(vec![Column::new("v", DataType::Int)]));
        for i in 0..10 {
            src.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        let batch = src.chunks()[0].to_batch();
        let shared = Arc::as_ptr(&batch.columns()[0]);
        let t = Table::from_batches("dst", src.schema().clone(), vec![batch]).unwrap();
        assert_eq!(t.row_count(), 10);
        assert_eq!(
            Arc::as_ptr(&t.chunks()[0].columns()[0]),
            shared,
            "adopted, not copied"
        );
        assert_eq!(t.rows(), src.rows());
    }

    #[test]
    fn from_batches_rejects_wrong_types() {
        let mut v = ColumnVector::new_for(Some(DataType::Str));
        v.push(Value::from("a"));
        let batch = ColumnBatch::new(vec![Arc::new(v)], 1);
        let err = Table::from_batches(
            "t",
            Schema::new(vec![Column::new("v", DataType::Int)]),
            vec![batch],
        )
        .unwrap_err();
        assert!(matches!(err, QccError::TypeMismatch(_)));
    }
}
