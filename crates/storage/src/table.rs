//! Row-oriented in-memory tables.

use qcc_common::{DataType, QccError, Result, Row, Schema, Value};

/// An in-memory base table: a schema plus a vector of rows.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (columns are unqualified at the base-table level).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Append a row after validating its arity and types. NULL is accepted
    /// in any column.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.validate(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append many rows, validating each.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Total byte width of all rows (approximation used for transfer-cost
    /// accounting and stats).
    pub fn byte_size(&self) -> usize {
        self.rows.iter().map(Row::byte_width).sum()
    }

    /// Average row width in bytes (the schema-width default when empty).
    pub fn avg_row_width(&self) -> f64 {
        if self.rows.is_empty() {
            // Assume 8 bytes per column when there is no data to measure.
            return (self.schema.len() * 8) as f64;
        }
        self.byte_size() as f64 / self.rows.len() as f64
    }

    fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(QccError::TypeMismatch(format!(
                "table {} expects {} columns, row has {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let expected = self.schema.column(i).ty;
            match (v.data_type(), expected) {
                (None, _) => {}
                (Some(t), e) if t == e => {}
                // Ints are acceptable where floats are expected.
                (Some(DataType::Int), DataType::Float) => {}
                (Some(t), e) => {
                    return Err(QccError::TypeMismatch(format!(
                        "table {} column {} expects {e}, got {t} ({v})",
                        self.name,
                        self.schema.column(i).name,
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Simulated "update workload" hook: touching a fraction of a table's rows.
/// Used by the experiments' heavy-update-load phases; the data itself is
/// perturbed in place so that repeated runs stay realistic.
pub fn apply_update_batch(table: &mut Table, fraction: f64, bump: i64) -> usize {
    let n = ((table.rows.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    let int_cols: Vec<usize> = table
        .schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ty == DataType::Int)
        .map(|(i, _)| i)
        .collect();
    if int_cols.is_empty() {
        return 0;
    }
    for r in 0..n.min(table.rows.len()) {
        let col = int_cols[r % int_cols.len()];
        let mut values = table.rows[r].clone().into_values();
        if let Value::Int(v) = values[col] {
            values[col] = Value::Int(v.wrapping_add(bump));
        }
        table.rows[r] = Row::new(values);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::Column;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Str),
                Column::new("score", DataType::Float),
            ]),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = table();
        t.insert(Row::new(vec![
            Value::Int(1),
            Value::from("a"),
            Value::Float(0.5),
        ]))
        .unwrap();
        t.insert(Row::new(vec![Value::Int(2), Value::Null, Value::Null]))
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.rows()[1].get(1), &Value::Null);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        let err = t.insert(Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, QccError::TypeMismatch(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = table();
        let err = t
            .insert(Row::new(vec![
                Value::from("oops"),
                Value::from("a"),
                Value::Float(0.5),
            ]))
            .unwrap_err();
        assert!(matches!(err, QccError::TypeMismatch(_)));
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = table();
        t.insert(Row::new(vec![
            Value::Int(1),
            Value::from("a"),
            Value::Int(3),
        ]))
        .unwrap();
    }

    #[test]
    fn avg_row_width_empty_fallback() {
        let t = table();
        assert_eq!(t.avg_row_width(), 24.0);
    }

    #[test]
    fn update_batch_touches_rows() {
        let mut t = table();
        for i in 0..10 {
            t.insert(Row::new(vec![
                Value::Int(i),
                Value::from("x"),
                Value::Float(0.0),
            ]))
            .unwrap();
        }
        let touched = apply_update_batch(&mut t, 0.5, 100);
        assert_eq!(touched, 5);
        assert_eq!(t.rows()[0].get(0), &Value::Int(100));
        assert_eq!(
            t.rows()[5].get(0),
            &Value::Int(5),
            "beyond fraction untouched"
        );
    }
}
