//! Secondary indexes over in-memory tables.
//!
//! A B-tree keyed on one column, mapping each key to the row positions that
//! carry it. The per-server optimizer offers an index access path when a
//! fragment has an equality or range predicate on an indexed column; this
//! is what lets a highly selective query (the paper's QT3) remain cheap on
//! a server even under heavy load.

use crate::table::Table;
use qcc_common::{QccError, Result, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A single-column secondary index.
#[derive(Debug, Clone)]
pub struct Index {
    column: usize,
    column_name: String,
    map: BTreeMap<Value, Vec<u32>>,
}

impl Index {
    /// Build an index on `column_name` of `table`.
    pub fn build(table: &Table, column_name: &str) -> Result<Index> {
        let column = table.schema().resolve(None, column_name)?;
        if table.row_count() > u32::MAX as usize {
            return Err(QccError::Config("table too large to index".into()));
        }
        let mut map: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
        let mut pos = 0u32;
        for chunk in table.chunks() {
            let vector = &chunk.columns()[column];
            for r in 0..chunk.len() {
                let key = vector.value(r);
                if !key.is_null() {
                    // NULLs are not indexed (SQL semantics: = never matches).
                    map.entry(key).or_default().push(pos);
                }
                pos += 1;
            }
        }
        Ok(Index {
            column,
            column_name: column_name.to_owned(),
            map,
        })
    }

    /// The indexed column's position in the table schema.
    pub fn column(&self) -> usize {
        self.column
    }

    /// The indexed column's name.
    pub fn column_name(&self) -> &str {
        &self.column_name
    }

    /// Row positions with `col = key`.
    pub fn lookup_eq(&self, key: &Value) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row positions with `lo ≤/< col ≤/< hi` (bounds per [`Bound`]),
    /// in key order.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<u32> {
        // An empty range panics in BTreeMap::range; guard it.
        if let (Bound::Included(l) | Bound::Excluded(l), Bound::Included(h) | Bound::Excluded(h)) =
            (&lo, &hi)
        {
            if l > h {
                return vec![];
            }
        }
        let mut out = Vec::new();
        for positions in self.map.range::<Value, _>((lo, hi)).map(|(_, v)| v) {
            out.extend_from_slice(positions);
        }
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType, Row, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
            ]),
        );
        for i in 0..100i64 {
            t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
                .unwrap();
        }
        t.insert(Row::new(vec![Value::Int(1000), Value::Null]))
            .unwrap();
        t
    }

    #[test]
    fn eq_lookup() {
        let t = table();
        let idx = Index::build(&t, "grp").unwrap();
        let hits = idx.lookup_eq(&Value::Int(3));
        assert_eq!(hits.len(), 10);
        for &pos in hits {
            assert_eq!(t.rows()[pos as usize].get(1), &Value::Int(3));
        }
    }

    #[test]
    fn eq_lookup_missing_key() {
        let t = table();
        let idx = Index::build(&t, "grp").unwrap();
        assert!(idx.lookup_eq(&Value::Int(999)).is_empty());
    }

    #[test]
    fn nulls_not_indexed() {
        let t = table();
        let idx = Index::build(&t, "grp").unwrap();
        assert!(idx.lookup_eq(&Value::Null).is_empty());
        assert_eq!(idx.distinct_keys(), 10);
    }

    #[test]
    fn range_lookup() {
        let t = table();
        let idx = Index::build(&t, "id").unwrap();
        let hits = idx.lookup_range(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(20)),
        );
        assert_eq!(hits.len(), 10);
        let unbounded = idx.lookup_range(Bound::Unbounded, Bound::Included(&Value::Int(4)));
        assert_eq!(unbounded.len(), 5);
    }

    #[test]
    fn inverted_range_is_empty() {
        let t = table();
        let idx = Index::build(&t, "id").unwrap();
        let hits = idx.lookup_range(
            Bound::Included(&Value::Int(20)),
            Bound::Included(&Value::Int(10)),
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(Index::build(&t, "nope").is_err());
    }
}
