//! Randomized tests for the statistics layer: selectivities are
//! probabilities, histograms are monotone CDFs, and index lookups agree
//! with exhaustive scans.
//!
//! Driven by the workspace's deterministic `Pcg32` so the suite runs
//! offline and failures reproduce from the fixed seeds.

use qcc_common::{Column, DataType, Pcg32, Row, Schema, Value};
use qcc_storage::{Histogram, Index, Table};
use std::ops::Bound;

#[test]
fn histogram_cdf_is_monotone_and_bounded() {
    let mut rng = Pcg32::seed_from(101);
    for case in 0..128 {
        let n = rng.range_u64(1, 500) as usize;
        let mut values: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let n_probes = rng.range_u64(1, 20) as usize;
        let mut probes: Vec<f64> = (0..n_probes).map(|_| rng.range_f64(-2e6, 2e6)).collect();

        let h = Histogram::build(values.clone()).expect("non-empty");
        values.sort_by(f64::total_cmp);
        probes.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for p in probes {
            let sel = h.selectivity_le(p);
            assert!((0.0..=1.0).contains(&sel), "case {case}: sel {sel}");
            assert!(sel + 1e-12 >= prev, "case {case}: CDF must be monotone");
            prev = sel;
        }
        assert_eq!(h.selectivity_le(values[values.len() - 1]), 1.0);
        assert_eq!(h.selectivity_le(values[0] - 1.0), 0.0);
    }
}

#[test]
fn histogram_range_close_to_truth_on_uniform() {
    let mut rng = Pcg32::seed_from(102);
    for case in 0..128 {
        // Uniform data: the histogram estimate must be within a few
        // percent of the exact answer.
        let lo = rng.range_u64(0, 800) as u32;
        let width = rng.range_u64(1, 200) as u32;
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).expect("non-empty");
        let hi = (lo + width).min(999);
        let est = h.selectivity_range(Some(lo as f64), Some(hi as f64));
        let truth = (hi - lo) as f64 / 1000.0;
        assert!(
            (est - truth).abs() < 0.08,
            "case {case}: est {est} truth {truth}"
        );
    }
}

#[test]
fn index_eq_agrees_with_scan() {
    let mut rng = Pcg32::seed_from(103);
    for case in 0..128 {
        let n = rng.range_u64(0, 300) as usize;
        let keys: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 50)).collect();
        let probe = rng.range_i64(0, 60);

        let mut t = Table::new("t", Schema::new(vec![Column::new("k", DataType::Int)]));
        for k in &keys {
            t.insert(Row::new(vec![Value::Int(*k)])).unwrap();
        }
        let idx = Index::build(&t, "k").unwrap();
        let via_index = idx.lookup_eq(&Value::Int(probe)).len();
        let via_scan = keys.iter().filter(|&&k| k == probe).count();
        assert_eq!(via_index, via_scan, "case {case}: probe {probe}");
    }
}

#[test]
fn index_range_agrees_with_scan() {
    let mut rng = Pcg32::seed_from(104);
    for case in 0..128 {
        let n = rng.range_u64(0, 300) as usize;
        let keys: Vec<i64> = (0..n).map(|_| rng.range_i64(-100, 100)).collect();
        let a = rng.range_i64(-120, 120);
        let b = rng.range_i64(-120, 120);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };

        let mut t = Table::new("t", Schema::new(vec![Column::new("k", DataType::Int)]));
        for k in &keys {
            t.insert(Row::new(vec![Value::Int(*k)])).unwrap();
        }
        let idx = Index::build(&t, "k").unwrap();
        let via_index = idx
            .lookup_range(
                Bound::Included(&Value::Int(lo)),
                Bound::Excluded(&Value::Int(hi)),
            )
            .len();
        let via_scan = keys.iter().filter(|&&k| k >= lo && k < hi).count();
        assert_eq!(via_index, via_scan, "case {case}: range [{lo}, {hi})");
    }
}
