//! Property tests for the statistics layer: selectivities are
//! probabilities, histograms are monotone CDFs, and index lookups agree
//! with exhaustive scans.

use proptest::prelude::*;
use qcc_common::{Column, DataType, Row, Schema, Value};
use qcc_storage::{Histogram, Index, Table};
use std::ops::Bound;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_cdf_is_monotone_and_bounded(
        mut values in prop::collection::vec(-1e6f64..1e6, 1..500),
        probes in prop::collection::vec(-2e6f64..2e6, 1..20),
    ) {
        let h = Histogram::build(values.clone()).expect("non-empty");
        values.sort_by(f64::total_cmp);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for p in sorted_probes {
            let sel = h.selectivity_le(p);
            prop_assert!((0.0..=1.0).contains(&sel));
            prop_assert!(sel + 1e-12 >= prev, "CDF must be monotone");
            prev = sel;
        }
        prop_assert_eq!(h.selectivity_le(values[values.len() - 1]), 1.0);
        prop_assert_eq!(h.selectivity_le(values[0] - 1.0), 0.0);
    }

    #[test]
    fn histogram_range_close_to_truth_on_uniform(lo in 0u32..800, width in 1u32..200) {
        // Uniform data: the histogram estimate must be within a few
        // percent of the exact answer.
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).expect("non-empty");
        let hi = (lo + width).min(999);
        let est = h.selectivity_range(Some(lo as f64), Some(hi as f64));
        let truth = (hi - lo) as f64 / 1000.0;
        prop_assert!((est - truth).abs() < 0.08, "est {est} truth {truth}");
    }

    #[test]
    fn index_eq_agrees_with_scan(
        keys in prop::collection::vec(0i64..50, 0..300),
        probe in 0i64..60,
    ) {
        let mut t = Table::new("t", Schema::new(vec![Column::new("k", DataType::Int)]));
        for k in &keys {
            t.insert(Row::new(vec![Value::Int(*k)])).unwrap();
        }
        let idx = Index::build(&t, "k").unwrap();
        let via_index = idx.lookup_eq(&Value::Int(probe)).len();
        let via_scan = keys.iter().filter(|&&k| k == probe).count();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn index_range_agrees_with_scan(
        keys in prop::collection::vec(-100i64..100, 0..300),
        a in -120i64..120,
        b in -120i64..120,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut t = Table::new("t", Schema::new(vec![Column::new("k", DataType::Int)]));
        for k in &keys {
            t.insert(Row::new(vec![Value::Int(*k)])).unwrap();
        }
        let idx = Index::build(&t, "k").unwrap();
        let via_index = idx
            .lookup_range(
                Bound::Included(&Value::Int(lo)),
                Bound::Excluded(&Value::Int(hi)),
            )
            .len();
        let via_scan = keys.iter().filter(|&&k| k >= lo && k < hi).count();
        prop_assert_eq!(via_index, via_scan);
    }
}
