//! Simulated autonomous remote servers.
//!
//! Each [`RemoteServer`] hosts a real relational engine over in-memory data
//! and answers the two requests the paper's wrappers issue:
//!
//! * [`RemoteServer::explain`] — parse and optimize a query fragment,
//!   returning candidate plans with the server's *own* cost estimates.
//!   Estimates assume an unloaded server: remote optimizers know nothing
//!   about their current load, which is exactly the blind spot the QCC
//!   compensates for.
//! * [`RemoteServer::execute`] — run a plan for real and convert the CPU
//!   work into a virtual service time: `work / speed × slowdown(ρ, s)`,
//!   where `ρ` is current utilization and the sensitivity `s` includes
//!   per-table contention from the update workload hammering the server.
//! * [`RemoteServer::execute_stream`] — the resumable form of `execute`:
//!   the result streams back as columnar chunks with interior service-time
//!   offsets, a crash window opening mid-service interrupts the stream at
//!   the transition instant, and a cursor lets any identical replica
//!   resume the remainder without replaying delivered chunks.
//!
//! Availability and transient faults are simulated per the server's
//! schedule and fault rate (feeding the QCC's reliability factor, §3.3).

pub mod server;

pub use server::{
    RemotePlan, RemoteResult, RemoteServer, RemoteStream, RemoteStreamChunk, RemoteStreamStatus,
    ServerProfile,
};
