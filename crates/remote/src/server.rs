//! The remote server implementation.

use parking_lot::Mutex;
use qcc_common::{ColumnBatch, Cost, Pcg32, QccError, Result, Row, ServerId, SimDuration, SimTime};
use qcc_engine::{Engine, PlanNode, Work};
use qcc_netsim::{slowdown, AvailabilitySchedule, FaultSchedule, LoadProfile, ServerLoad};
use qcc_storage::Catalog;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Static characteristics of a remote server.
#[derive(Debug, Clone)]
pub struct ServerProfile {
    /// Server identifier.
    pub id: ServerId,
    /// CPU speed multiplier: work units per virtual millisecond. The
    /// paper's S3 is "the most powerful machine among the three".
    pub speed: f64,
    /// Baseline load sensitivity of the processor-sharing slowdown.
    pub base_sensitivity: f64,
    /// Utilization added per in-flight query (hot-spot feedback).
    pub per_query_load: f64,
    /// Probability of a transient fault per request (reliability factor
    /// input). 0 for healthy servers.
    pub fault_rate: f64,
}

impl ServerProfile {
    /// A balanced default profile.
    pub fn new(id: impl Into<ServerId>) -> Self {
        ServerProfile {
            id: id.into(),
            speed: 1.0,
            base_sensitivity: 1.0,
            per_query_load: 0.05,
            fault_rate: 0.0,
        }
    }
}

/// One candidate execution plan for a fragment, as reported by EXPLAIN.
#[derive(Debug, Clone)]
pub struct RemotePlan {
    /// The executable plan (the paper's "execution descriptor").
    pub descriptor: PlanNode,
    /// The server's own cost estimate (load-blind).
    pub cost: Cost,
    /// Canonical plan-shape signature (for interchangeability tests).
    pub signature: String,
}

/// The outcome of executing a fragment at a remote server.
#[derive(Debug, Clone)]
pub struct RemoteResult {
    /// Result batches in columnar form. Columns are `Arc`-shared with the
    /// server's storage where the plan permits (bare scans), so shipping a
    /// fragment result does not copy table data.
    pub batches: Vec<ColumnBatch>,
    /// Virtual service time at the server (excluding network).
    pub elapsed: SimDuration,
    /// Result size in bytes (for transfer costing).
    pub result_bytes: u64,
}

impl RemoteResult {
    /// Materialize the result as rows (compatibility view for row-oriented
    /// consumers and tests).
    pub fn rows(&self) -> Vec<Row> {
        self.batches.iter().flat_map(ColumnBatch::to_rows).collect()
    }

    /// Total result rows across batches.
    pub fn n_rows(&self) -> usize {
        self.batches.iter().map(ColumnBatch::n_rows).sum()
    }
}

/// One chunk of a streamed fragment result: a column batch plus the
/// service-time offset (from request arrival) at which it left the server.
#[derive(Debug, Clone)]
pub struct RemoteStreamChunk {
    /// The chunk payload (one of the plan's result batches).
    pub batch: ColumnBatch,
    /// Service-time offset from request arrival at which this chunk was
    /// produced. Offsets are interior interpolations of the one-shot
    /// service time, proportional to cumulative rows; the last chunk of a
    /// complete stream lands exactly at the one-shot service time.
    pub offset: SimDuration,
}

/// Terminal status of a streamed execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteStreamStatus {
    /// Every requested chunk was produced.
    Complete,
    /// The server went down mid-service at `at` (absolute virtual time):
    /// chunks produced strictly before `at` were delivered, the rest
    /// never left the server.
    Interrupted { at: SimTime },
}

/// The outcome of a resumable streamed execution (the cursor protocol).
///
/// A request with `cursor = c` asks for chunks `c..total_chunks` of the
/// plan's result. Chunk indices are positions in the plan's batch list,
/// which is deterministic per plan shape, so any server holding an
/// identical replica can resume another server's stream at its cursor.
#[derive(Debug, Clone)]
pub struct RemoteStream {
    /// Delivered chunks, in order. The first has absolute index `cursor`.
    pub chunks: Vec<RemoteStreamChunk>,
    /// Whether the stream ran to completion or was cut by an outage.
    pub status: RemoteStreamStatus,
    /// Absolute index of the first chunk requested.
    pub cursor: usize,
    /// Total chunks in the full (cursor-0) result.
    pub total_chunks: usize,
    /// Virtual service time at the server for the delivered portion.
    pub elapsed: SimDuration,
    /// Bytes of the delivered chunks (for transfer costing).
    pub result_bytes: u64,
    /// Execution work for the full plan, independent of the cursor (the
    /// equivalence gates compare this against the row-at-a-time
    /// reference).
    pub work: Work,
}

impl RemoteStream {
    /// Number of chunks delivered by this call.
    pub fn delivered(&self) -> usize {
        self.chunks.len()
    }

    /// Materialize the delivered chunks as rows.
    pub fn rows(&self) -> Vec<Row> {
        self.chunks.iter().flat_map(|c| c.batch.to_rows()).collect()
    }
}

/// A simulated remote DBMS server.
pub struct RemoteServer {
    profile: ServerProfile,
    engine: Engine,
    load: ServerLoad,
    availability: AvailabilitySchedule,
    /// Flaky windows: transient-error rates on virtual time (the sim
    /// harness's soft-failure fault class). Decisions are stateless —
    /// hashed from the request identity — so batch execution stays
    /// byte-identical for any `QCC_THREADS`.
    faults: FaultSchedule,
    /// Extra slowdown sensitivity per table while the update workload
    /// contends on it (set by the experiment's load driver).
    contention: Mutex<BTreeMap<String, f64>>,
    rng: Mutex<Pcg32>,
}

/// FNV-1a over `bytes`, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h
}

impl RemoteServer {
    /// Create a server over a catalog, initially idle and always up.
    pub fn new(profile: ServerProfile, catalog: Catalog) -> Arc<Self> {
        let load = ServerLoad::new(LoadProfile::Constant(0.0), profile.per_query_load);
        // Seed the fault-injection RNG from the server name (FNV-1a) so
        // each server has its own deterministic stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in profile.id.as_str().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Arc::new(RemoteServer {
            rng: Mutex::new(Pcg32::seed_from(h)),
            profile,
            engine: Engine::new(catalog),
            load,
            availability: AvailabilitySchedule::always_up(),
            faults: FaultSchedule::none(),
            contention: Mutex::new(BTreeMap::new()),
        })
    }

    /// The server's identifier.
    pub fn id(&self) -> &ServerId {
        &self.profile.id
    }

    /// The server's static profile.
    pub fn profile(&self) -> &ServerProfile {
        &self.profile
    }

    /// The server's load state (the experiment driver swaps background
    /// profiles per phase and may hold in-flight guards to emulate
    /// concurrency).
    pub fn load(&self) -> &ServerLoad {
        &self.load
    }

    /// The server's availability schedule.
    pub fn availability(&self) -> &AvailabilitySchedule {
        &self.availability
    }

    /// The server's transient-fault schedule (flaky windows on virtual
    /// time; clones share state, so fault injectors keep a handle).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// The hosted engine (tests use this to inspect the catalog).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Set per-table contention sensitivities (replaces the previous map).
    /// The experiment's heavy-update phases hammer specific tables on
    /// specific servers; queries scanning those tables slow down steeply.
    pub fn set_contention(&self, map: BTreeMap<String, f64>) {
        *self.contention.lock() = map;
    }

    /// EXPLAIN a fragment: candidate plans with load-blind cost estimates,
    /// cheapest first. Fails when the server is down.
    pub fn explain(&self, sql: &str, at: SimTime) -> Result<Vec<RemotePlan>> {
        self.check_up(at)?;
        let plans = self.engine.explain(sql)?;
        Ok(plans
            .into_iter()
            .map(|p| RemotePlan {
                signature: p.plan.signature(),
                // Scale estimates by CPU speed: a faster server honestly
                // reports lower expected times.
                cost: p.cost.calibrate(1.0 / self.profile.speed),
                descriptor: p.plan,
            })
            .collect())
    }

    /// Execute a plan at virtual time `at`, returning rows and the virtual
    /// service time. May fail with [`QccError::ServerUnavailable`] (down)
    /// or [`QccError::ServerFault`] (transient fault, per `fault_rate`).
    ///
    /// This is the call-and-wait view over [`RemoteServer::execute_stream`]
    /// with cursor 0 and no mid-service interruption; the service-time
    /// arithmetic is float-identical to the pre-streaming implementation.
    pub fn execute(&self, descriptor: &PlanNode, at: SimTime) -> Result<RemoteResult> {
        let stream = self.execute_stream(descriptor, at, 0, false)?;
        Ok(RemoteResult {
            result_bytes: stream.result_bytes,
            batches: stream.chunks.into_iter().map(|c| c.batch).collect(),
            elapsed: stream.elapsed,
        })
    }

    /// Execute chunks `cursor..` of a plan at virtual time `at`, streaming
    /// resumable chunks (the cursor protocol).
    ///
    /// The timing model is the one-shot service time with interior chunk
    /// boundaries interpolated proportionally to cumulative result rows; a
    /// cursor-`c` request is charged the proportional remainder, so
    /// resuming never replays already-delivered work. When `interruptible`
    /// is set, an availability window opening strictly inside the service
    /// interval cuts the stream: chunks produced strictly before the
    /// down-transition are delivered, the status reports
    /// [`RemoteStreamStatus::Interrupted`] at the transition instant, and
    /// the caller may resume the remainder elsewhere. (Only crash windows
    /// interrupt; flaky windows stay arrival-sampled, as before.)
    pub fn execute_stream(
        &self,
        descriptor: &PlanNode,
        at: SimTime,
        cursor: usize,
        interruptible: bool,
    ) -> Result<RemoteStream> {
        self.check_up(at)?;
        if self.profile.fault_rate > 0.0 {
            let roll = self.rng.lock().next_f64();
            if roll < self.profile.fault_rate {
                return Err(QccError::ServerFault {
                    server: self.profile.id.clone(),
                    message: "transient fault injected".into(),
                });
            }
        }
        // Flaky-window faults must not consume a shared RNG stream: under
        // `submit_batch` fragments execute on worker threads in
        // nondeterministic order, so the decision is a stateless hash of
        // the request identity (server, plan shape, virtual time) — the
        // same request faults the same way for any `QCC_THREADS`. Resumed
        // requests (cursor > 0) mix the cursor in so a remainder rolls its
        // own fate; cursor-0 requests hash exactly as before.
        let window_rate = self.faults.rate_at(at);
        if window_rate > 0.0 {
            let mut h = fnv1a(0xcbf29ce484222325, self.profile.id.as_str().as_bytes());
            h = fnv1a(h, descriptor.signature().as_bytes());
            h = fnv1a(h, &at.as_millis().to_bits().to_le_bytes());
            if cursor > 0 {
                h = fnv1a(h, &(cursor as u64).to_le_bytes());
            }
            let roll = (h >> 11) as f64 / (1u64 << 53) as f64;
            if roll < window_rate {
                return Err(QccError::ServerFault {
                    server: self.profile.id.clone(),
                    message: "transient fault window".into(),
                });
            }
        }
        // Utilization sampled before this query starts (its own footprint
        // is represented by in-flight guards the driver may hold).
        let rho = self.load.utilization(at);
        let sensitivity = self.effective_sensitivity(descriptor);
        let (batches, work) = self.engine.execute_plan_batches(descriptor)?;
        let service_ms = work.cpu_units / self.profile.speed * slowdown(rho, sensitivity);
        let total_chunks = batches.len();
        if cursor > total_chunks {
            return Err(QccError::Execution(format!(
                "stream cursor {cursor} past end ({total_chunks} chunks) at {}",
                self.profile.id
            )));
        }
        // Chunk boundary offsets over the one-shot service time,
        // proportional to cumulative rows (even spacing when the result
        // is empty). `boundary(i)` is the offset at which chunk `i-1`
        // completes; boundary(total_chunks) is exactly `service_ms`.
        let total_rows: usize = batches.iter().map(ColumnBatch::n_rows).sum();
        let mut cum = 0usize;
        let mut boundaries = Vec::with_capacity(total_chunks);
        for (i, b) in batches.iter().enumerate() {
            cum += b.n_rows();
            let frac = if total_rows > 0 {
                cum as f64 / total_rows as f64
            } else {
                (i + 1) as f64 / total_chunks as f64
            };
            boundaries.push(if cum == total_rows && i + 1 == total_chunks {
                service_ms
            } else {
                service_ms * frac
            });
        }
        let base_ms = if cursor == 0 {
            0.0
        } else {
            boundaries[cursor - 1]
        };
        let full_elapsed_ms = service_ms - base_ms;
        // First down-transition strictly inside the service interval (the
        // arrival liveness check already passed, so no window covers
        // `at`; finishing exactly at a window start counts as complete).
        let interrupt = if interruptible {
            self.availability
                .next_down_within(at, at + SimDuration::from_millis(full_elapsed_ms))
        } else {
            None
        };
        let mut chunks = Vec::new();
        let mut result_bytes = 0u64;
        for (i, batch) in batches.into_iter().enumerate().skip(cursor) {
            let offset_ms = boundaries[i] - base_ms;
            if let Some(down_at) = interrupt {
                // A chunk completing exactly at the down-transition never
                // left the server.
                if at + SimDuration::from_millis(offset_ms) >= down_at {
                    break;
                }
            }
            result_bytes += batch.byte_size();
            chunks.push(RemoteStreamChunk {
                batch,
                offset: SimDuration::from_millis(offset_ms),
            });
        }
        let (status, elapsed) = match interrupt {
            Some(down_at) => (
                RemoteStreamStatus::Interrupted { at: down_at },
                down_at - at,
            ),
            None => (
                RemoteStreamStatus::Complete,
                SimDuration::from_millis(full_elapsed_ms),
            ),
        };
        // A complete cursor-0 stream reports the full result size
        // verbatim (byte-identical to the call-and-wait path).
        if cursor == 0 && status == RemoteStreamStatus::Complete {
            result_bytes = work.result_bytes;
        }
        Ok(RemoteStream {
            chunks,
            status,
            cursor,
            total_chunks,
            elapsed,
            result_bytes,
            work,
        })
    }

    /// Cheap liveness probe (the QCC daemons call this). Returns the probe's
    /// service time, or an error when down.
    pub fn ping(&self, at: SimTime) -> Result<SimDuration> {
        self.check_up(at)?;
        let rho = self.load.utilization(at);
        let ms = 0.2 / self.profile.speed * slowdown(rho, self.profile.base_sensitivity);
        Ok(SimDuration::from_millis(ms))
    }

    fn check_up(&self, at: SimTime) -> Result<()> {
        if self.availability.is_up(at) {
            Ok(())
        } else {
            Err(QccError::ServerUnavailable(self.profile.id.clone()))
        }
    }

    fn effective_sensitivity(&self, descriptor: &PlanNode) -> f64 {
        let contention = self.contention.lock();
        let table_extra = descriptor
            .base_tables()
            .iter()
            .filter_map(|t| contention.get(&t.to_ascii_lowercase()).copied())
            .fold(0.0_f64, f64::max);
        // Index accesses contend separately: a heavy update workload
        // hammers B-tree pages, so index-driven plans can degrade more
        // than table scans on the same table. Keys are "idx:<table>.<col>".
        let index_extra = descriptor
            .index_scans()
            .iter()
            .filter_map(|(t, c)| {
                contention
                    .get(&format!(
                        "idx:{}.{}",
                        t.to_ascii_lowercase(),
                        c.to_ascii_lowercase()
                    ))
                    .copied()
            })
            .fold(0.0_f64, f64::max);
        self.profile.base_sensitivity + table_extra.max(index_extra)
    }
}

impl std::fmt::Debug for RemoteServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteServer")
            .field("id", &self.profile.id)
            .field("speed", &self.profile.speed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_common::{Column, DataType, Schema, Value};
    use qcc_storage::Table;

    fn catalog(rows: i64) -> Catalog {
        let mut t = Table::new(
            "items",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
        );
        for i in 0..rows {
            t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 7)]))
                .unwrap();
        }
        let mut c = Catalog::new();
        c.register(t);
        c
    }

    fn server(speed: f64) -> Arc<RemoteServer> {
        let mut profile = ServerProfile::new(ServerId::new("S1"));
        profile.speed = speed;
        RemoteServer::new(profile, catalog(10_000))
    }

    #[test]
    fn explain_returns_cheapest_first() {
        let s = server(1.0);
        let plans = s
            .explain("SELECT * FROM items WHERE v = 3", SimTime::ZERO)
            .unwrap();
        assert!(!plans.is_empty());
        for w in plans.windows(2) {
            assert!(w[0].cost.total() <= w[1].cost.total());
        }
    }

    #[test]
    fn faster_server_reports_lower_estimates() {
        let slow = server(1.0);
        let fast = server(2.0);
        let sql = "SELECT COUNT(*) FROM items";
        let cs = slow.explain(sql, SimTime::ZERO).unwrap()[0].cost.total();
        let cf = fast.explain(sql, SimTime::ZERO).unwrap()[0].cost.total();
        assert!((cs / cf - 2.0).abs() < 1e-6);
    }

    #[test]
    fn execute_returns_rows_and_time() {
        let s = server(1.0);
        let plans = s
            .explain("SELECT COUNT(*) FROM items", SimTime::ZERO)
            .unwrap();
        let r = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int(10_000));
        assert!(r.elapsed.as_millis() > 0.0);
    }

    #[test]
    fn load_slows_execution() {
        let s = server(1.0);
        let plans = s
            .explain("SELECT COUNT(*) FROM items", SimTime::ZERO)
            .unwrap();
        let idle = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        s.load().set_background(LoadProfile::Constant(0.8));
        let loaded = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        assert!(
            loaded.elapsed.as_millis() > idle.elapsed.as_millis() * 3.0,
            "idle {} vs loaded {}",
            idle.elapsed,
            loaded.elapsed
        );
    }

    #[test]
    fn contention_targets_specific_tables() {
        let s = server(1.0);
        s.load().set_background(LoadProfile::Constant(0.7));
        let plans = s
            .explain("SELECT COUNT(*) FROM items", SimTime::ZERO)
            .unwrap();
        let before = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        let mut map = BTreeMap::new();
        map.insert("items".to_string(), 5.0);
        s.set_contention(map);
        let after = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        assert!(after.elapsed.as_millis() > before.elapsed.as_millis() * 2.0);
        // Contention on an unrelated table does nothing.
        let mut map = BTreeMap::new();
        map.insert("other".to_string(), 5.0);
        s.set_contention(map);
        let unrelated = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        assert!((unrelated.elapsed.as_millis() - before.elapsed.as_millis()).abs() < 1e-9);
    }

    #[test]
    fn outage_rejects_requests() {
        let s = server(1.0);
        s.availability()
            .add_outage(SimTime::from_millis(10.0), SimTime::from_millis(20.0));
        assert!(s
            .explain("SELECT * FROM items", SimTime::from_millis(15.0))
            .is_err());
        let plans = s.explain("SELECT * FROM items", SimTime::ZERO).unwrap();
        assert!(matches!(
            s.execute(&plans[0].descriptor, SimTime::from_millis(15.0)),
            Err(QccError::ServerUnavailable(_))
        ));
        assert!(s.ping(SimTime::from_millis(15.0)).is_err());
        assert!(s.ping(SimTime::from_millis(25.0)).is_ok());
    }

    #[test]
    fn faults_injected_at_configured_rate() {
        let mut profile = ServerProfile::new(ServerId::new("flaky"));
        profile.fault_rate = 0.5;
        let s = RemoteServer::new(profile, catalog(100));
        let plans = s.explain("SELECT * FROM items", SimTime::ZERO).unwrap();
        let mut faults = 0;
        for _ in 0..200 {
            if matches!(
                s.execute(&plans[0].descriptor, SimTime::ZERO),
                Err(QccError::ServerFault { .. })
            ) {
                faults += 1;
            }
        }
        assert!((60..140).contains(&faults), "got {faults} faults of 200");
    }

    #[test]
    fn stream_matches_execute_bit_for_bit() {
        let s = server(1.0);
        s.load().set_background(LoadProfile::Constant(0.4));
        let plans = s
            .explain("SELECT * FROM items WHERE v < 5", SimTime::ZERO)
            .unwrap();
        let one_shot = s.execute(&plans[0].descriptor, SimTime::ZERO).unwrap();
        let stream = s
            .execute_stream(&plans[0].descriptor, SimTime::ZERO, 0, true)
            .unwrap();
        assert_eq!(stream.status, RemoteStreamStatus::Complete);
        assert_eq!(stream.cursor, 0);
        assert_eq!(stream.total_chunks, one_shot.batches.len());
        assert_eq!(
            stream.elapsed.as_millis().to_bits(),
            one_shot.elapsed.as_millis().to_bits()
        );
        assert_eq!(stream.result_bytes, one_shot.result_bytes);
        assert_eq!(stream.rows(), one_shot.rows());
        // The last chunk lands exactly at the one-shot service time and
        // offsets are nondecreasing.
        let last = stream.chunks.last().unwrap();
        assert_eq!(
            last.offset.as_millis().to_bits(),
            one_shot.elapsed.as_millis().to_bits()
        );
        for w in stream.chunks.windows(2) {
            assert!(w[0].offset.as_millis() <= w[1].offset.as_millis());
        }
    }

    #[test]
    fn resume_covers_exactly_the_remainder() {
        let s = server(1.0);
        let plans = s
            .explain("SELECT * FROM items WHERE v < 5", SimTime::ZERO)
            .unwrap();
        let full = s
            .execute_stream(&plans[0].descriptor, SimTime::ZERO, 0, false)
            .unwrap();
        assert!(full.total_chunks >= 2, "need a multi-chunk result");
        for cursor in 0..=full.total_chunks {
            let rest = s
                .execute_stream(&plans[0].descriptor, SimTime::ZERO, cursor, false)
                .unwrap();
            assert_eq!(rest.status, RemoteStreamStatus::Complete);
            assert_eq!(rest.delivered(), full.total_chunks - cursor);
            let mut expect: Vec<Row> = Vec::new();
            for c in &full.chunks[cursor..] {
                expect.extend(c.batch.to_rows());
            }
            assert_eq!(rest.rows(), expect);
            // Proportionally less service time remains as the cursor
            // advances; delivered bytes sum to the full size.
            assert!(rest.elapsed.as_millis() <= full.elapsed.as_millis() + 1e-9);
            let prefix: u64 = full.chunks[..cursor]
                .iter()
                .map(|c| c.batch.byte_size())
                .sum();
            assert_eq!(prefix + rest.result_bytes, full.result_bytes);
        }
    }

    #[test]
    fn midservice_outage_interrupts_the_stream() {
        let s = server(1.0);
        let plans = s
            .explain("SELECT * FROM items WHERE v < 5", SimTime::ZERO)
            .unwrap();
        let full = s
            .execute_stream(&plans[0].descriptor, SimTime::ZERO, 0, true)
            .unwrap();
        assert!(full.total_chunks >= 2);
        // Open a crash window halfway through the service interval.
        let mid = SimTime::from_millis(full.elapsed.as_millis() / 2.0);
        s.availability()
            .add_outage(mid, mid + SimDuration::from_millis(1e6));
        let cut = s
            .execute_stream(&plans[0].descriptor, SimTime::ZERO, 0, true)
            .unwrap();
        assert_eq!(cut.status, RemoteStreamStatus::Interrupted { at: mid });
        assert!(cut.delivered() < full.total_chunks);
        assert_eq!(cut.elapsed.as_millis(), mid.as_millis());
        for c in &cut.chunks {
            assert!(SimTime::ZERO + c.offset < mid);
        }
        // The non-interruptible path still sees only arrival liveness
        // (the pre-streaming contract).
        let blind = s
            .execute_stream(&plans[0].descriptor, SimTime::ZERO, 0, false)
            .unwrap();
        assert_eq!(blind.status, RemoteStreamStatus::Complete);
        // A replica (same data, no outage) resumes the remainder.
        let replica = server(1.0);
        let rest = replica
            .execute_stream(&plans[0].descriptor, mid, cut.delivered(), true)
            .unwrap();
        assert_eq!(rest.status, RemoteStreamStatus::Complete);
        let mut rows = cut.rows();
        rows.extend(rest.rows());
        assert_eq!(rows, full.rows());
    }

    #[test]
    fn ping_reflects_load() {
        let s = server(1.0);
        let idle = s.ping(SimTime::ZERO).unwrap();
        s.load().set_background(LoadProfile::Constant(0.9));
        let loaded = s.ping(SimTime::ZERO).unwrap();
        assert!(loaded.as_millis() > idle.as_millis() * 5.0);
    }
}
