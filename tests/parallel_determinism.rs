//! The scatter-gather layer's headline guarantee: **determinism under
//! parallelism**. Routing decisions, calibration factors, explain-table
//! contents and result rows must be byte-identical for any worker-pool
//! width — threads is purely a wall-clock knob (DESIGN.md "Threading
//! model").
//!
//! These are golden equivalence tests: the `threads = 1` run is the
//! reference, and wider pools must reproduce it bit for bit (`f64`
//! comparisons go through `to_bits`, so not even a ULP of drift passes).

use load_aware_federation::workload::experiment::run_phases_on;
use load_aware_federation::workload::{
    PhaseSchedule, Routing, Scenario, ScenarioConfig, ALL_QUERY_TYPES,
};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn config(threads: usize) -> ScenarioConfig {
    ScenarioConfig {
        threads,
        ..ScenarioConfig::tiny()
    }
}

/// Everything observable about a finished run, with floats frozen as bit
/// patterns so equality is exact.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    phases: Vec<(usize, [u64; 4], [String; 4], u64)>,
    explain_table: Vec<(String, String)>,
    server_factors: Vec<(String, u64)>,
    ii_factors: Vec<(String, u64)>,
    patroller: Vec<(String, u64, Option<u64>)>,
}

fn fingerprint(scenario: &Scenario, routing: Routing) -> Fingerprint {
    let schedule = PhaseSchedule {
        // Two contrasting phases keep the test fast while still exercising
        // the re-calibration cycle at a phase boundary.
        phases: PhaseSchedule::paper_table1().phases[..2].to_vec(),
    };
    let result = run_phases_on(scenario, routing, &schedule, 2, 1);

    let phases = result
        .phases
        .iter()
        .map(|p| {
            (
                p.number,
                std::array::from_fn(|i| p.per_type_ms[i].to_bits()),
                p.per_type_server.clone(),
                p.avg_ms.to_bits(),
            )
        })
        .collect();
    let explain_table: Vec<(String, String)> =
        scenario.federation.explain_table().into_iter().collect();
    let qcc = scenario.qcc.as_ref().expect("QCC routing");
    let server_factors = scenario
        .servers
        .iter()
        .map(|s| {
            (
                s.id().to_string(),
                qcc.calibration.server_factor(s.id()).to_bits(),
            )
        })
        .collect();
    // The explain table is keyed by template signature — reuse those keys
    // to read back every per-template II workload factor.
    let ii_factors = explain_table
        .iter()
        .map(|(template, _)| {
            (
                template.clone(),
                qcc.calibration.ii_factor(template).to_bits(),
            )
        })
        .chain(std::iter::once((
            "".to_string(),
            qcc.calibration.ii_factor("").to_bits(),
        )))
        .collect();
    let patroller = scenario
        .federation
        .patroller()
        .log()
        .into_iter()
        .map(|e| {
            (
                e.sql,
                e.submitted.as_millis().to_bits(),
                e.completed.map(|t| t.as_millis().to_bits()),
            )
        })
        .collect();
    Fingerprint {
        phases,
        explain_table,
        server_factors,
        ii_factors,
        patroller,
    }
}

#[test]
fn phase_run_is_byte_identical_across_thread_counts() {
    let routing = Routing::Qcc;
    let reference = fingerprint(&Scenario::build_with(routing, config(1)), routing);
    assert!(
        !reference.explain_table.is_empty() && !reference.patroller.is_empty(),
        "reference run must actually route queries"
    );
    for threads in &THREAD_COUNTS[1..] {
        let got = fingerprint(&Scenario::build_with(routing, config(*threads)), routing);
        assert_eq!(
            got, reference,
            "threads={threads} diverged from the sequential reference"
        );
    }
}

#[test]
fn batch_outcomes_are_byte_identical_across_thread_counts() {
    // Full QueryOutcome comparison over batched submission: ids, rows,
    // plan signatures, server sets, per-fragment times, estimates.
    let sqls: Vec<String> = (0..3)
        .flat_map(|i| ALL_QUERY_TYPES.iter().map(move |qt| qt.sql(i)))
        .collect();
    let outcome_print = |threads: usize| -> Vec<String> {
        let scenario = Scenario::build_with(Routing::Qcc, config(threads));
        scenario
            .federation
            .submit_batch(&sqls)
            .into_iter()
            .map(|r| {
                let out = r.expect("batch queries succeed");
                format!(
                    "{:?} {:?} {} {} {:?} {:?} {}",
                    out.id,
                    out.rows,
                    out.response_ms.to_bits(),
                    out.chosen_signature,
                    out.servers,
                    out.fragment_times
                        .iter()
                        .map(|(s, ms)| (s.to_string(), ms.to_bits()))
                        .collect::<Vec<_>>(),
                    out.estimated_cost.to_bits(),
                )
            })
            .collect()
    };
    let reference = outcome_print(1);
    assert_eq!(reference.len(), sqls.len());
    for threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            outcome_print(*threads),
            reference,
            "threads={threads} produced different batch outcomes"
        );
    }
}

#[test]
fn plan_cache_and_patroller_survive_concurrent_hammering() {
    use load_aware_federation::common::{Cost, ServerId, SimTime};
    use load_aware_federation::federation::{PlanCache, QueryPatroller, QueryStatus};
    use load_aware_federation::wrapper::FragmentPlan;

    let cache = Arc::new(PlanCache::new());
    let patroller = Arc::new(QueryPatroller::new());
    let workers = 8;
    let per_worker = 200;

    std::thread::scope(|s| {
        for w in 0..workers {
            let cache = Arc::clone(&cache);
            let patroller = Arc::clone(&patroller);
            s.spawn(move || {
                for i in 0..per_worker {
                    let server = ServerId::new(format!("S{}", i % 3));
                    let sql = format!("SELECT {}", i % 7);
                    cache.put_shared(
                        &server,
                        &sql,
                        Arc::new(vec![FragmentPlan {
                            server: server.clone(),
                            sql: sql.clone(),
                            descriptor: None,
                            cost: Some(Cost::fixed(1.0)),
                            signature: format!("sig{}", i % 7),
                        }]),
                    );
                    let _ = cache.get(&server, &sql);
                    if i % 50 == 49 {
                        cache.invalidate_server(&server);
                    }
                    let at = SimTime::from_millis((w * per_worker + i) as f64);
                    let id = patroller.record_submit(&sql, at);
                    patroller.record_complete(id, at);
                }
            });
        }
    });

    // Every submit got a unique id and a completion; no entry was lost or
    // corrupted by interleaving.
    let log = patroller.log();
    assert_eq!(log.len(), workers * per_worker);
    assert!(log.iter().all(|e| e.status == QueryStatus::Completed));
    assert!(log.iter().all(|e| e.completed.is_some()));
    let (hits, misses) = cache.stats();
    assert_eq!(
        (hits + misses) as usize,
        workers * per_worker,
        "every get must count as exactly one hit or miss"
    );
    // The cache is still coherent: whatever remains maps the key it was
    // stored under.
    for server in ["S0", "S1", "S2"].map(ServerId::new) {
        for i in 0..7 {
            let sql = format!("SELECT {i}");
            if let Some(plans) = cache.get(&server, &sql) {
                assert_eq!(plans[0].sql, sql);
                assert_eq!(plans[0].server, server);
            }
        }
    }
}
