//! Golden equivalence for the admission layer: driving an open-loop
//! Poisson arrival process past saturation — queueing, weighted-fair
//! dequeue, token gating, deadline and queue-full shedding — must leave
//! **byte-identical** qcc-obs metrics and journal snapshots for any
//! worker-pool width.
//!
//! The argument: every admission decision (enqueue, capacity refresh,
//! dequeue, shed) happens on the coordinator thread *between*
//! `submit_batch` calls, against a frozen token snapshot; in-flight
//! queries only read that snapshot, and their own journal emissions ride
//! the `Deferred` buffers applied in task order at the gather barrier.
//! The run must also actually shed — an admission test at an arrival rate
//! the system can drain would prove nothing.

use load_aware_federation::admission::{AdmissionConfig, AdmissionController};
use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::{
    poisson_arrivals, run_open_loop, AdmissionMode, Scenario, ScenarioConfig,
};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn run_snapshots(threads: usize) -> (String, String, u64) {
    let mut scenario = Scenario::build_with_qcc(
        QccConfig::default(),
        ScenarioConfig {
            threads,
            ..ScenarioConfig::tiny()
        },
    );
    let admission = Arc::new(AdmissionController::with_obs(
        AdmissionConfig {
            queue_deadline_ms: 40.0,
            exec_deadline_ms: 120.0,
            base_tokens: 4,
            max_queue_depth: 32,
            ..AdmissionConfig::default()
        },
        scenario.obs.clone(),
    ));
    scenario.federation.set_admission(Arc::clone(&admission));
    // ~4x the tiny scenario's drain rate: the queue caps out and sheds.
    let arrivals = poisson_arrivals(6.0, 300, 0xfeed);
    let report = run_open_loop(&scenario, AdmissionMode::Admitted(&admission), &arrivals);
    assert_eq!(
        report.completed.len() as u64 + report.shed + report.failed,
        arrivals.len() as u64,
        "every arrival is accounted for"
    );
    (
        scenario.obs.metrics_snapshot(),
        scenario.obs.journal_snapshot(),
        report.shed,
    )
}

#[test]
fn admission_snapshots_are_byte_identical_across_thread_counts() {
    let (metrics_ref, journal_ref, shed) = run_snapshots(1);
    assert!(
        shed > 0,
        "the saturation scenario must actually shed queries"
    );
    // The reference journal tells the whole admission story.
    for kind in [
        "\"kind\":\"enqueue\"",
        "\"kind\":\"dequeue\"",
        "\"kind\":\"shed\"",
        "\"kind\":\"token_capacity\"",
    ] {
        assert!(journal_ref.contains(kind), "journal missing {kind}");
    }
    assert!(
        metrics_ref.contains("sheds_total"),
        "metrics missing the shed counter"
    );
    assert!(
        metrics_ref.contains("admission_queue_wait_ms"),
        "metrics missing the time-in-queue histogram"
    );
    assert!(
        metrics_ref.contains("admission_queue_depth"),
        "metrics missing the queue depth gauge"
    );
    for threads in &THREAD_COUNTS[1..] {
        let (metrics, journal, shed_n) = run_snapshots(*threads);
        assert_eq!(
            metrics, metrics_ref,
            "threads={threads}: metrics snapshot diverged from sequential reference"
        );
        assert_eq!(
            journal, journal_ref,
            "threads={threads}: journal diverged from sequential reference"
        );
        assert_eq!(shed_n, shed, "threads={threads}: shed count drifted");
    }
}
