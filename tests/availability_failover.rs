//! Integration tests for §3.3: availability detection, cost pinning,
//! re-routing, recovery, and the reliability factor for flaky servers.

use load_aware_federation::common::{
    Column, DataType, QccError, Row, Schema, ServerId, SimDuration, SimTime, Value,
};
use load_aware_federation::federation::{
    Federation, FederationConfig, NicknameCatalog, PassthroughMiddleware,
};
use load_aware_federation::netsim::{Link, Network, SimClock};
use load_aware_federation::qcc::{AvailabilityDaemon, Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::{RelationalWrapper, Wrapper};
use std::sync::Arc;

const SQL: &str = "SELECT COUNT(*) FROM data WHERE v > 10";

struct World {
    primary: Arc<RemoteServer>,
    backup: Arc<RemoteServer>,
    clock: SimClock,
    federation: Federation,
    qcc: Arc<Qcc>,
    daemon: AvailabilityDaemon,
}

fn world(primary_fault_rate: f64) -> World {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("v", DataType::Int),
    ]);
    let mut data = Table::new("data", schema.clone());
    for i in 0..2_000i64 {
        data.insert(Row::new(vec![Value::Int(i), Value::Int(i % 100)]))
            .unwrap();
    }
    let mk = |name: &str, speed: f64, fault_rate: f64| {
        let mut c = Catalog::new();
        c.register(data.clone());
        let mut p = ServerProfile::new(ServerId::new(name));
        p.speed = speed;
        p.fault_rate = fault_rate;
        RemoteServer::new(p, c)
    };
    let primary = mk("primary", 2.0, primary_fault_rate);
    let backup = mk("backup", 1.0, 0.0);
    let mut network = Network::new();
    for n in ["primary", "backup"] {
        network.add_link(ServerId::new(n), Link::lan());
    }
    let network = Arc::new(network);
    let mut nicknames = NicknameCatalog::new();
    nicknames.define("data", schema);
    nicknames
        .add_source("data", ServerId::new("primary"), "data")
        .unwrap();
    nicknames
        .add_source("data", ServerId::new("backup"), "data")
        .unwrap();
    let qcc = Qcc::new(QccConfig {
        probe_interval_ms: 100.0,
        ..QccConfig::default()
    });
    let clock = SimClock::new();
    let mut federation = Federation::new(
        nicknames,
        clock.clone(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    let wrappers: Vec<Arc<dyn Wrapper>> = vec![
        Arc::new(RelationalWrapper::new(
            Arc::clone(&primary),
            Arc::clone(&network),
        )),
        Arc::new(RelationalWrapper::new(Arc::clone(&backup), network)),
    ];
    for w in &wrappers {
        federation.add_wrapper(Arc::clone(w));
    }
    let daemon = AvailabilityDaemon::new(Arc::clone(&qcc), wrappers, clock.clone());
    World {
        primary,
        backup,
        clock,
        federation,
        qcc,
        daemon,
    }
}

#[test]
fn outage_triggers_reroute_and_recovery_restores() {
    let w = world(0.0);
    // Healthy: fast primary serves.
    let out = w.federation.submit(SQL).unwrap();
    assert!(out.servers.contains(&ServerId::new("primary")));

    // Outage window on the virtual timeline.
    let t0 = w.clock.now();
    w.primary
        .availability()
        .add_outage(t0, t0 + SimDuration::from_millis(1_000.0));

    // Mid-outage: the submit discovers the failure at compile time (the
    // wrapper errors), the MW records it, and the query lands on backup.
    let out = w.federation.submit(SQL).unwrap();
    assert!(
        out.servers.contains(&ServerId::new("backup")),
        "re-routed during outage, got {:?}",
        out.servers
    );
    assert!(w.qcc.reliability.is_down(&ServerId::new("primary")));
    assert_eq!(
        w.qcc.reliability.factor(&ServerId::new("primary")),
        f64::INFINITY
    );

    // While believed down, the MW does not even consult the server.
    let out = w.federation.submit(SQL).unwrap();
    assert!(out.servers.contains(&ServerId::new("backup")));

    // After the outage a daemon probe revives it...
    w.clock.advance(SimDuration::from_millis(2_000.0));
    w.daemon.run_due_probes();
    assert!(!w.qcc.reliability.is_down(&ServerId::new("primary")));
    assert!(w
        .qcc
        .reliability
        .factor(&ServerId::new("primary"))
        .is_finite());
}

#[test]
fn all_sources_down_fails_cleanly() {
    let w = world(0.0);
    let t0 = w.clock.now();
    let long = t0 + SimDuration::from_millis(1e9);
    w.primary.availability().add_outage(t0, long);
    w.backup.availability().add_outage(t0, long);
    let err = w.federation.submit(SQL).unwrap_err();
    assert!(
        matches!(err, QccError::NoViablePlan(_)),
        "expected NoViablePlan, got {err}"
    );
}

#[test]
fn flaky_server_is_penalized_until_reliable() {
    let w = world(0.35);
    // Submit a batch: primary faults get recorded; the reliability factor
    // inflates primary's costs; routing shifts toward backup.
    let mut backup_hits = 0;
    for _ in 0..30 {
        if let Ok(out) = w.federation.submit(SQL) {
            if out.servers.contains(&ServerId::new("backup")) {
                backup_hits += 1;
            }
        }
    }
    assert!(
        w.qcc.reliability.error_rate(&ServerId::new("primary")) > 0.0,
        "faults recorded"
    );
    assert!(
        backup_hits > 0,
        "reliability penalty should divert some traffic to backup"
    );
    // Errors are in the MW record store for later analysis.
    assert!(w
        .qcc
        .records
        .errors()
        .iter()
        .any(|e| e.server == ServerId::new("primary")));
}

#[test]
fn faults_are_retried_within_one_query() {
    // Even with a fault rate, most submissions succeed because the
    // federation re-routes to a healthy candidate within the same query.
    let w = world(0.5);
    let mut ok = 0;
    for _ in 0..20 {
        if w.federation.submit(SQL).is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok >= 18,
        "retry should mask most transient faults, got {ok}/20"
    );
}

#[test]
fn runtime_fault_fails_over_within_the_same_query() {
    // fault_rate 1.0: the primary always answers EXPLAIN (compile is not
    // subject to faults) but always fails EXECUTE. The federation must
    // ban it mid-query and finish on the backup, deterministically.
    let w = world(1.0);
    let out = w.federation.submit(SQL).unwrap();
    assert!(
        out.servers.contains(&ServerId::new("backup")),
        "failed over to {:?}",
        out.servers
    );
    // The fault is in the record store and the reliability state.
    assert!(w.qcc.reliability.error_rate(&ServerId::new("primary")) > 0.0);
    assert!(!w.qcc.records.errors().is_empty());
}

#[test]
fn baseline_without_qcc_does_not_track_availability() {
    // The same outage under a passthrough middleware: the federation still
    // retries (compile-time skip of dead servers), but nothing learns —
    // no reliability state exists. This pins down what the QCC adds.
    let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
    let mut data = Table::new("data", schema.clone());
    for i in 0..100i64 {
        data.insert(Row::new(vec![Value::Int(i)])).unwrap();
    }
    let mut c1 = Catalog::new();
    c1.register(data.clone());
    let mut c2 = Catalog::new();
    c2.register(data);
    let p = RemoteServer::new(ServerProfile::new(ServerId::new("p")), c1);
    let b = RemoteServer::new(ServerProfile::new(ServerId::new("b")), c2);
    let mut net = Network::new();
    net.add_link(ServerId::new("p"), Link::lan());
    net.add_link(ServerId::new("b"), Link::lan());
    let net = Arc::new(net);
    let mut nicknames = NicknameCatalog::new();
    nicknames.define("data", schema);
    nicknames
        .add_source("data", ServerId::new("p"), "data")
        .unwrap();
    nicknames
        .add_source("data", ServerId::new("b"), "data")
        .unwrap();
    let clock = SimClock::new();
    let mut fed = Federation::new(
        nicknames,
        clock.clone(),
        Arc::new(PassthroughMiddleware::default()),
        FederationConfig::default(),
    );
    fed.add_wrapper(Arc::new(RelationalWrapper::new(
        Arc::clone(&p),
        Arc::clone(&net),
    )));
    fed.add_wrapper(Arc::new(RelationalWrapper::new(b, net)));

    p.availability()
        .add_outage(SimTime::ZERO, SimTime::from_millis(1e9));
    // Queries still succeed via the surviving replica...
    let out = fed.submit("SELECT COUNT(*) FROM data").unwrap();
    assert!(out.servers.contains(&ServerId::new("b")));
    // ...but every single compile re-contacts the dead server (no memory),
    // which is precisely the cost QCC's availability state removes.
}
