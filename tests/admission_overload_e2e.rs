//! Overload end-to-end: at ~2x the saturation arrival rate, admission
//! control turns unbounded backlog growth into bounded latency plus
//! shedding.
//!
//! * **Admission on** — every admitted-and-completed query meets its
//!   total deadline (queue deadline + execution deadline measured from
//!   arrival), p99 stays bounded, and a nonzero fraction of the offered
//!   load is shed: the queue is doing its job.
//! * **Admission off** — the same arrival sequence dispatched
//!   unconditionally piles concurrency onto the servers; each round's
//!   mean response exceeds the previous round's (monotone growth, the
//!   open-loop saturation signature) and the final round dwarfs the
//!   first.

use load_aware_federation::admission::{AdmissionConfig, AdmissionController};
use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::{
    poisson_arrivals, run_open_loop, AdmissionMode, ArrivalEvent, Scenario, ScenarioConfig,
};
use std::sync::Arc;

const QUEUE_DEADLINE_MS: f64 = 40.0;
const EXEC_DEADLINE_MS: f64 = 120.0;

fn overload_arrivals() -> Vec<ArrivalEvent> {
    // The tiny scenario drains roughly 3 queries/ms from a cold start;
    // 6/ms is ~2x saturation.
    poisson_arrivals(6.0, 300, 0xfeed)
}

#[test]
fn admission_bounds_latency_and_sheds_under_overload() {
    let mut scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let admission = Arc::new(AdmissionController::with_obs(
        AdmissionConfig {
            queue_deadline_ms: QUEUE_DEADLINE_MS,
            exec_deadline_ms: EXEC_DEADLINE_MS,
            base_tokens: 4,
            max_queue_depth: 32,
            ..AdmissionConfig::default()
        },
        scenario.obs.clone(),
    ));
    scenario.federation.set_admission(Arc::clone(&admission));
    let arrivals = overload_arrivals();
    let report = run_open_loop(&scenario, AdmissionMode::Admitted(&admission), &arrivals);

    assert!(report.shed > 0, "2x saturation must shed");
    assert!(
        !report.completed.is_empty(),
        "admission must still complete queries"
    );
    assert_eq!(report.failed, 0, "no non-admission failures expected");
    // Every admitted query meets its deadline: total arrival-to-result
    // budget is the queue deadline plus the execution deadline.
    let budget = QUEUE_DEADLINE_MS + EXEC_DEADLINE_MS;
    for c in &report.completed {
        assert!(
            c.response_ms <= budget,
            "{} arrived {} took {:.3}ms, over the {budget}ms budget",
            c.template,
            c.arrived,
            c.response_ms
        );
    }
    // And p99 is bounded well below the budget in practice.
    let p99 = report.response_percentile(99.0);
    assert!(
        p99 <= budget,
        "p99 {p99:.3}ms exceeds the {budget}ms deadline budget"
    );
    assert_eq!(
        report.goodput(budget),
        report.completed.len(),
        "goodput equals completions when every completion is on time"
    );
}

#[test]
fn no_admission_baseline_grows_without_bound() {
    let scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let arrivals = overload_arrivals();
    // Same worker-pool budget the admitted run gets from its tokens
    // (3 servers x 4 base tokens) — the only difference is no queueing
    // policy, no deadlines, no shedding.
    let report = run_open_loop(
        &scenario,
        AdmissionMode::Unprotected { width: 12 },
        &arrivals,
    );

    assert_eq!(report.shed, 0, "nothing sheds without admission");
    assert_eq!(
        report.completed.len(),
        arrivals.len(),
        "unprotected mode completes everything, however late"
    );
    let means = &report.round_mean_response_ms;
    assert!(
        means.len() >= 3,
        "expected several dispatch rounds, got {}",
        means.len()
    );
    // Monotonically increasing round means: each round inherits the
    // previous round's backlog plus everything that arrived meanwhile.
    for pair in means.windows(2) {
        assert!(
            pair[1] > pair[0],
            "round means must grow monotonically under overload: {means:?}"
        );
    }
    let (first, last) = (means[0], means[means.len() - 1]);
    assert!(
        last > 5.0 * first,
        "unbounded growth expected: first round {first:.3}ms, last {last:.3}ms"
    );
}
