//! Overload end-to-end: at ~2x the saturation arrival rate, admission
//! control turns unbounded backlog growth into bounded latency plus
//! shedding — and *dominates* the unprotected baseline on both goodput
//! and tail latency.
//!
//! * **Admission on** — every admitted-and-completed query meets its
//!   total deadline (queue deadline + execution deadline measured from
//!   arrival), p99 stays bounded, and a nonzero fraction of the offered
//!   load is shed: the queue is doing its job. Per-reason shed counters
//!   partition the controller's aggregate exactly (no double counting).
//! * **Admission off** — the same arrival sequence dispatched
//!   unconditionally piles concurrency onto the servers; each round's
//!   mean response exceeds the previous round's (monotone growth, the
//!   open-loop saturation signature) and the final round dwarfs the
//!   first.
//! * **Dominance** — admission-on completes at least as many queries
//!   within the deadline budget as admission-off, at no worse p99.

use load_aware_federation::admission::{AdmissionConfig, AdmissionController, SHED_REASONS};
use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::{
    poisson_arrivals, run_open_loop, AdmissionMode, ArrivalEvent, Scenario, ScenarioConfig,
};
use std::sync::Arc;

const QUEUE_DEADLINE_MS: f64 = 40.0;
const EXEC_DEADLINE_MS: f64 = 120.0;

fn overload_arrivals() -> Vec<ArrivalEvent> {
    // The tiny scenario drains roughly 3 queries/ms from a cold start;
    // 6/ms is ~2x saturation. The window is long enough (~200ms of
    // offered load) that an unprotected pool's backlog visibly outgrows
    // the deadline budget — a short burst would let FIFO catch up before
    // its tail latency ever crossed the budget.
    poisson_arrivals(6.0, 1200, 0xfeed)
}

fn admitted_controller(scenario: &Scenario) -> Arc<AdmissionController> {
    Arc::new(AdmissionController::with_obs(
        AdmissionConfig {
            queue_deadline_ms: QUEUE_DEADLINE_MS,
            exec_deadline_ms: EXEC_DEADLINE_MS,
            base_tokens: 4,
            // Deep queue: bursts wait under EDF and shed-on-dispatch
            // decides their fate; the depth bound is a memory guard, not
            // the shedding policy.
            max_queue_depth: 1024,
            ..AdmissionConfig::default()
        },
        scenario.obs.clone(),
    ))
}

#[test]
fn admission_bounds_latency_and_sheds_under_overload() {
    let mut scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let admission = admitted_controller(&scenario);
    scenario.federation.set_admission(Arc::clone(&admission));
    let arrivals = overload_arrivals();
    let report = run_open_loop(&scenario, AdmissionMode::Admitted(&admission), &arrivals);

    assert!(report.shed > 0, "2x saturation must shed");
    assert!(
        !report.completed.is_empty(),
        "admission must still complete queries"
    );
    assert_eq!(report.failed, 0, "no non-admission failures expected");
    // Tail latency stays inside the total arrival-to-result budget (queue
    // deadline plus execution deadline). The shed-on-dispatch estimator is
    // an EWMA, so an occasional marginal query can land a few ms past the
    // budget — the guarantee is the tail, not every last completion.
    let budget = QUEUE_DEADLINE_MS + EXEC_DEADLINE_MS;
    let p99 = report.response_percentile(99.0);
    assert!(
        p99 <= budget,
        "p99 {p99:.3}ms exceeds the {budget}ms deadline budget"
    );
    assert!(
        report.goodput(budget) * 100 >= report.completed.len() * 99,
        "at least 99% of completions must be on time ({} of {})",
        report.goodput(budget),
        report.completed.len()
    );

    // Shed accounting: the per-reason `sheds_total` counters partition
    // the controller's aggregate shed count exactly — every shed carries
    // exactly one reason, and a ticket that is dequeued but later fails
    // token acquisition is not counted twice.
    let counts = admission.counts();
    let by_reason: u64 = SHED_REASONS
        .iter()
        .map(|reason| {
            admission
                .obs_handle()
                .counter_value("sheds_total", &[("reason", reason)])
        })
        .sum();
    assert_eq!(
        by_reason, counts.shed,
        "per-reason shed counters must sum exactly to AdmissionCounts::shed"
    );
    assert_eq!(
        report.shed, counts.shed,
        "driver-observed sheds and controller counters must agree"
    );
    assert_eq!(
        counts.enqueued,
        counts.dispatched
            + (counts.shed
                - admission
                    .obs_handle()
                    .counter_value("sheds_total", &[("reason", "queue_full")])
                - admission
                    .obs_handle()
                    .counter_value("sheds_total", &[("reason", "no_tokens")])),
        "every enqueued ticket is either dispatched or shed from the queue"
    );
}

#[test]
fn admission_dominates_unprotected_baseline_on_goodput_and_p99() {
    let arrivals = overload_arrivals();
    let budget = QUEUE_DEADLINE_MS + EXEC_DEADLINE_MS;

    let mut admitted_scenario =
        Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let admission = admitted_controller(&admitted_scenario);
    admitted_scenario
        .federation
        .set_admission(Arc::clone(&admission));
    let admitted = run_open_loop(
        &admitted_scenario,
        AdmissionMode::Admitted(&admission),
        &arrivals,
    );

    // Same arrival sequence, fresh identical world, fixed-width FIFO pool
    // sized to the admitted run's aggregate token budget (3 servers x 4
    // base tokens) — the only difference is the policy.
    let baseline_scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let baseline = run_open_loop(
        &baseline_scenario,
        AdmissionMode::Unprotected { width: 12 },
        &arrivals,
    );

    for reason in SHED_REASONS {
        eprintln!(
            "shed[{reason}] = {}",
            admission
                .obs_handle()
                .counter_value("sheds_total", &[("reason", reason)])
        );
    }
    eprintln!(
        "admitted: completed={} shed={} | baseline completed={}",
        admitted.completed.len(),
        admitted.shed,
        baseline.completed.len()
    );
    let (admitted_goodput, baseline_goodput) = (admitted.goodput(budget), baseline.goodput(budget));
    assert!(
        admitted_goodput >= baseline_goodput,
        "admission-on goodput {admitted_goodput} must dominate \
         admission-off {baseline_goodput} at 2x saturation"
    );
    let (admitted_p99, baseline_p99) = (
        admitted.response_percentile(99.0),
        baseline.response_percentile(99.0),
    );
    assert!(
        admitted_p99 <= baseline_p99.min(budget),
        "admission-on p99 {admitted_p99:.3}ms must beat both the baseline \
         p99 {baseline_p99:.3}ms and the {budget}ms deadline budget"
    );
}

#[test]
fn no_admission_baseline_grows_without_bound() {
    let scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let arrivals = overload_arrivals();
    // Same worker-pool budget the admitted run gets from its tokens
    // (3 servers x 4 base tokens) — the only difference is no queueing
    // policy, no deadlines, no shedding.
    let report = run_open_loop(
        &scenario,
        AdmissionMode::Unprotected { width: 12 },
        &arrivals,
    );

    assert_eq!(report.shed, 0, "nothing sheds without admission");
    assert_eq!(
        report.completed.len(),
        arrivals.len(),
        "unprotected mode completes everything, however late"
    );
    let means = &report.round_mean_response_ms;
    assert!(
        means.len() >= 3,
        "expected several dispatch rounds, got {}",
        means.len()
    );
    // Monotonically increasing round means: each round inherits the
    // previous round's backlog plus everything that arrived meanwhile.
    for pair in means.windows(2) {
        assert!(
            pair[1] > pair[0],
            "round means must grow monotonically under overload: {means:?}"
        );
    }
    let (first, last) = (means[0], means[means.len() - 1]);
    assert!(
        last > 5.0 * first,
        "unbounded growth expected: first round {first:.3}ms, last {last:.3}ms"
    );
}
