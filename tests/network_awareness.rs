//! Network awareness: the QCC must react to *network* conditions exactly
//! as it does to server load — the calibration factor captures "variations
//! in the network latencies or processing cost variations at the remote
//! sources" (§3.1) without distinguishing the two causes.

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, SimTime, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::sync::Arc;

const SQL: &str = "SELECT grp, COUNT(*) AS n FROM readings GROUP BY grp";

/// Two identical servers; `near` sits behind a link whose congestion we
/// control, `far` behind a higher-latency but stable link.
struct World {
    near_link: Link,
    federation: Federation,
    qcc: Arc<Qcc>,
    clock: SimClock,
}

fn world() -> World {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("grp", DataType::Int),
    ]);
    let mut readings = Table::new("readings", schema.clone());
    for i in 0..4_000i64 {
        readings
            .insert(Row::new(vec![Value::Int(i), Value::Int(i % 8)]))
            .unwrap();
    }
    let mk = |name: &str| {
        let mut c = Catalog::new();
        c.register(readings.clone());
        RemoteServer::new(ServerProfile::new(ServerId::new(name)), c)
    };
    let near = mk("near");
    let far = mk("far");

    // near: 2ms RTT, controllable congestion; far: 12ms RTT, stable.
    let near_link = Link::new(2.0, 20_000.0, LoadProfile::Constant(0.0));
    let far_link = Link::new(12.0, 20_000.0, LoadProfile::Constant(0.0));
    let mut network = Network::new();
    network.add_link(ServerId::new("near"), near_link.clone());
    network.add_link(ServerId::new("far"), far_link);
    let network = Arc::new(network);

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("readings", schema);
    nicknames
        .add_source("readings", ServerId::new("near"), "readings")
        .unwrap();
    nicknames
        .add_source("readings", ServerId::new("far"), "readings")
        .unwrap();

    let qcc = Qcc::new(QccConfig::default());
    let clock = SimClock::new();
    let mut federation = Federation::new(
        nicknames,
        clock.clone(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    federation.add_wrapper(Arc::new(RelationalWrapper::new(near, Arc::clone(&network))));
    federation.add_wrapper(Arc::new(RelationalWrapper::new(far, network)));
    World {
        near_link,
        federation,
        qcc,
        clock,
    }
}

#[test]
fn uncongested_routing_prefers_the_nearer_server() {
    let w = world();
    let mut servers = Vec::new();
    for _ in 0..6 {
        let out = w.federation.submit(SQL).unwrap();
        servers = out.servers.iter().map(|s| s.to_string()).collect();
    }
    assert_eq!(servers, vec!["near".to_string()]);
}

#[test]
fn congestion_shifts_routing_to_the_farther_server() {
    let w = world();
    // Warm both factors up.
    for _ in 0..4 {
        let _ = w.federation.submit(SQL).unwrap();
    }
    // Severe congestion hits the near link: latency inflates 20×,
    // bandwidth collapses. The optimizer's cost model knows nothing about
    // links — only the observed/estimated ratio can notice.
    w.near_link.set_congestion(LoadProfile::Constant(0.95));
    let mut last = Vec::new();
    for _ in 0..8 {
        let out = w.federation.submit(SQL).unwrap();
        last = out.servers.iter().map(|s| s.to_string()).collect();
    }
    assert_eq!(
        last,
        vec!["far".to_string()],
        "congestion on the near link must push traffic to the far replica"
    );
    // The factor of `near` rose even though the *server* is idle — network
    // and server effects are indistinguishable in the ratio, by design.
    assert!(w.qcc.calibration.server_factor(&ServerId::new("near")) > 1.5);
}

#[test]
fn time_varying_congestion_follows_the_profile() {
    let w = world();
    // Congestion arrives as a step at t = 500ms on the near link.
    w.near_link
        .set_congestion(LoadProfile::Steps(vec![(SimTime::from_millis(500.0), 0.9)]));
    let mut before = Vec::new();
    let mut after = Vec::new();
    for _ in 0..20 {
        let out = w.federation.submit(SQL).unwrap();
        let servers: Vec<String> = out.servers.iter().map(|s| s.to_string()).collect();
        if w.clock.now() < SimTime::from_millis(500.0) {
            before = servers;
        } else {
            after = servers;
        }
        w.clock.advance(qcc_common::SimDuration::from_millis(40.0));
    }
    assert_eq!(before, vec!["near".to_string()], "calm period: near wins");
    assert_eq!(after, vec!["far".to_string()], "congested period: far wins");
}

#[test]
fn transfer_time_scales_with_result_size() {
    // Larger results pay proportionally more on the wire; the observed
    // response (and hence the calibration) includes it.
    let w = world();
    let small = w
        .federation
        .submit("SELECT COUNT(*) FROM readings")
        .unwrap();
    let large = w.federation.submit("SELECT id, grp FROM readings").unwrap();
    assert!(large.response_ms > small.response_ms);
}
