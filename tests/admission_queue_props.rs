//! Randomized property tests for the admission arrival queue, in the
//! style of `engine_vs_naive_prop.rs`: scenarios are generated from the
//! workspace's deterministic `Pcg32` (fixed seeds, offline, reproducible)
//! and checked against discipline invariants rather than golden outputs.
//!
//! Properties:
//!
//! 1. **Strict priority never inverts** — whenever a ticket is dequeued,
//!    no ticket of a strictly higher class is still waiting.
//! 2. **WFQ never starves a nonempty template** — with every arrival
//!    enqueued up front, the `k`-th service of template `t` happens within
//!    the finish-tag bound `Σ_s min(len_s, ⌊k·w_s/w_t⌋ + 1)` positions of
//!    the class drain; for equal weights this tightens to round-robin
//!    (prefix service counts differ by at most one while all templates
//!    still have backlog).
//! 3. **Drain order is invariant under arrival-batch chunking** — the
//!    concatenated admitted order is the same whether the queue is
//!    drained one ticket, two, five, or sixteen tickets per round.
//! 4. **EDF within a class** — with deadlines enabled and monotone
//!    arrival times, a ticket is never dequeued after one with a strictly
//!    later deadline in the same class; equal deadlines fall back to the
//!    WFQ finish-tag order (identical drain to a deadline-free run); and
//!    the EDF drain order is itself invariant under dispatch-quota
//!    chunking.

use load_aware_federation::admission::{AdmissionConfig, AdmissionController, PriorityClass};
use load_aware_federation::common::{Pcg32, ServerId, SimTime};
use std::collections::BTreeMap;

const CLASSES: [PriorityClass; 3] = [
    PriorityClass::High,
    PriorityClass::Normal,
    PriorityClass::Low,
];

/// One generated arrival: `(template, class)` — the SQL text is irrelevant
/// to queue discipline.
fn random_arrivals(rng: &mut Pcg32, templates: &[&str]) -> Vec<(String, PriorityClass)> {
    let n = rng.range_u64(20, 120) as usize;
    (0..n)
        .map(|_| {
            let t = *rng.choose(templates);
            let c = *rng.choose(&CLASSES);
            (t.to_string(), c)
        })
        .collect()
}

fn controller(weights: BTreeMap<String, f64>) -> AdmissionController {
    AdmissionController::new(AdmissionConfig {
        // Disable the queue deadline and the depth bound: these tests are
        // about drain *order*, so nothing may be shed.
        queue_deadline_ms: 0.0,
        exec_deadline_ms: 0.0,
        max_queue_depth: 0,
        template_weights: weights,
        ..AdmissionConfig::default()
    })
}

/// Enqueue every arrival at t=0, then drain with `quota` tickets per
/// round, returning `(seq, template, class)` in admitted order.
fn drain_with_quota(
    arrivals: &[(String, PriorityClass)],
    weights: &BTreeMap<String, f64>,
    quota: u32,
) -> Vec<(u64, String, PriorityClass)> {
    let ctl = controller(weights.clone());
    let t0 = SimTime::from_millis(0.0);
    // One synthetic server whose capacity *is* the dispatch quota.
    assert!(!ctl.set_capacity(&ServerId::new("s0"), quota, t0));
    for (template, class) in arrivals {
        ctl.enqueue("SELECT 1", template, *class, t0)
            .expect("depth bound disabled; enqueue cannot shed");
    }
    let mut out = Vec::with_capacity(arrivals.len());
    while ctl.queue_depth() > 0 {
        let batch = ctl.dequeue_batch(t0);
        assert!(batch.shed.is_empty(), "deadline disabled; nothing may shed");
        assert!(
            batch.admitted.len() <= quota as usize,
            "round width {} exceeds quota {quota}",
            batch.admitted.len()
        );
        assert!(
            !batch.admitted.is_empty(),
            "nonempty queue must make progress"
        );
        for t in batch.admitted {
            out.push((t.seq, t.template, t.class));
        }
    }
    out
}

/// A controller with a finite deadline budget so EDF is active, but one
/// large enough (1e6 ms) that nothing can shed during a drain.
fn edf_controller(weights: BTreeMap<String, f64>) -> AdmissionController {
    AdmissionController::new(AdmissionConfig {
        queue_deadline_ms: 1_000_000.0,
        exec_deadline_ms: 0.0,
        max_queue_depth: 0,
        template_weights: weights,
        ..AdmissionConfig::default()
    })
}

/// Enqueue arrivals at staggered times (`i` ms apart, so deadlines are
/// monotone in arrival order), then drain with `quota` tickets per round
/// starting at the last arrival time. Returns `(seq, template, class,
/// deadline_ms)` in admitted order.
fn drain_staggered_with_quota(
    arrivals: &[(String, PriorityClass)],
    weights: &BTreeMap<String, f64>,
    quota: u32,
) -> Vec<(u64, String, PriorityClass, f64)> {
    let ctl = edf_controller(weights.clone());
    assert!(!ctl.set_capacity(&ServerId::new("s0"), quota, SimTime::ZERO));
    for (i, (template, class)) in arrivals.iter().enumerate() {
        ctl.enqueue("SELECT 1", template, *class, SimTime::from_millis(i as f64))
            .expect("depth bound disabled; enqueue cannot shed");
    }
    let now = SimTime::from_millis(arrivals.len() as f64);
    let mut out = Vec::with_capacity(arrivals.len());
    while ctl.queue_depth() > 0 {
        let batch = ctl.dequeue_batch(now);
        assert!(
            batch.shed.is_empty(),
            "budget is 1e6 ms; nothing may shed during the drain"
        );
        for t in batch.admitted {
            out.push((t.seq, t.template, t.class, t.deadline_ms));
        }
    }
    out
}

#[test]
fn strict_priority_never_inverts() {
    let templates = ["QT1", "QT2", "QT3", "QT4"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0xAD31_5510 ^ seed);
        let arrivals = random_arrivals(&mut rng, &templates);
        let drained = drain_with_quota(&arrivals, &BTreeMap::new(), 1);
        assert_eq!(drained.len(), arrivals.len());
        // With quota 1 each round pops exactly one ticket, so the drain
        // order is the pop order: track what is still queued and assert no
        // higher class was waiting when a lower class was served.
        let mut remaining: BTreeMap<PriorityClass, usize> = BTreeMap::new();
        for (_, class) in &arrivals {
            *remaining.entry(*class).or_insert(0) += 1;
        }
        for (seq, template, class) in drained {
            let higher_waiting: usize = remaining
                .iter()
                .filter(|(c, _)| **c < class)
                .map(|(_, n)| *n)
                .sum();
            assert_eq!(
                higher_waiting, 0,
                "seed {seed}: seq {seq} ({template}, {class}) dequeued while \
                 {higher_waiting} higher-priority tickets were waiting"
            );
            *remaining.get_mut(&class).expect("was enqueued") -= 1;
        }
    }
}

#[test]
fn equal_weight_wfq_is_round_robin_within_a_class() {
    let templates = ["QT1", "QT2", "QT3"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0x00FA_1234 ^ seed);
        // Single class isolates the WFQ discipline from strict priority.
        let arrivals: Vec<(String, PriorityClass)> = random_arrivals(&mut rng, &templates)
            .into_iter()
            .map(|(t, _)| (t, PriorityClass::Normal))
            .collect();
        let drained = drain_with_quota(&arrivals, &BTreeMap::new(), 1);
        let mut backlog: BTreeMap<&str, isize> = BTreeMap::new();
        for (t, _) in &arrivals {
            *backlog
                .entry(templates.iter().find(|x| **x == *t).unwrap())
                .or_insert(0) += 1;
        }
        let mut served: BTreeMap<&str, isize> = BTreeMap::new();
        for (_, template, _) in &drained {
            let t = *templates.iter().find(|x| **x == *template).unwrap();
            *served.entry(t).or_insert(0) += 1;
            *backlog.get_mut(t).unwrap() -= 1;
            // While every template still has backlog, equal weights mean
            // pure round-robin: prefix service counts differ by ≤ 1.
            if backlog.values().all(|b| *b > 0) {
                let max = served.values().copied().max().unwrap_or(0);
                let min = templates
                    .iter()
                    .map(|t| served.get(t).copied().unwrap_or(0))
                    .min()
                    .unwrap();
                assert!(
                    max - min <= 1,
                    "seed {seed}: round-robin violated (served spread {max}-{min})"
                );
            }
        }
    }
}

#[test]
fn weighted_wfq_never_starves_a_nonempty_template() {
    let templates = ["QT1", "QT2", "QT3", "QT4"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0x57A2_7E00 ^ seed);
        let mut weights = BTreeMap::new();
        for t in &templates {
            weights.insert((*t).to_string(), *rng.choose(&[1.0, 2.0, 4.0]));
        }
        let arrivals: Vec<(String, PriorityClass)> = random_arrivals(&mut rng, &templates)
            .into_iter()
            .map(|(t, _)| (t, PriorityClass::Normal))
            .collect();
        let mut len: BTreeMap<&str, usize> = BTreeMap::new();
        for (t, _) in &arrivals {
            *len.entry(templates.iter().find(|x| **x == *t).unwrap())
                .or_insert(0) += 1;
        }
        let drained = drain_with_quota(&arrivals, &weights, 1);
        // Finish-tag bound: template t's k-th entry carries tag k/w_t, and
        // a pop always serves a minimal tag, so before it is served at most
        // ⌊k·w_s/w_t⌋ + 1 entries of each template s (capped by its backlog)
        // can go first. Position is 1-based within the drain.
        let mut kth: BTreeMap<&str, usize> = BTreeMap::new();
        for (position, (_, template, _)) in drained.iter().enumerate() {
            let t = *templates.iter().find(|x| **x == *template).unwrap();
            let k = kth.entry(t).or_insert(0);
            *k += 1;
            let w_t = weights[t];
            let bound: usize = templates
                .iter()
                .map(|s| {
                    let allowed = ((*k as f64) * weights[*s] / w_t).floor() as usize + 1;
                    allowed.min(len.get(s).copied().unwrap_or(0))
                })
                .sum();
            assert!(
                position + 1 <= bound,
                "seed {seed}: service {k} of {t} (weight {w_t}) at position {} \
                 exceeds the no-starvation bound {bound}",
                position + 1
            );
        }
    }
}

#[test]
fn drain_order_is_invariant_under_quota_chunking() {
    let templates = ["QT1", "QT2", "QT3", "QT4", "QT5"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0xC4_0B17 ^ seed);
        let mut weights = BTreeMap::new();
        for t in &templates {
            weights.insert((*t).to_string(), *rng.choose(&[1.0, 2.0, 3.0]));
        }
        let arrivals = random_arrivals(&mut rng, &templates);
        let reference = drain_with_quota(&arrivals, &weights, 1);
        for quota in [2u32, 5, 16] {
            let chunked = drain_with_quota(&arrivals, &weights, quota);
            assert_eq!(
                reference, chunked,
                "seed {seed}: drain order changed under quota {quota}"
            );
        }
    }
}

#[test]
fn edf_never_dequeues_a_later_deadline_before_an_earlier_one_within_a_class() {
    let templates = ["QT1", "QT2", "QT3", "QT4"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0xEDF0_0001 ^ seed);
        let arrivals = random_arrivals(&mut rng, &templates);
        let drained = drain_staggered_with_quota(&arrivals, &BTreeMap::new(), 1);
        assert_eq!(drained.len(), arrivals.len());
        // Within each class the drain must be sorted by deadline: arrival
        // times are strictly increasing, so per-template FIFOs hold
        // increasing deadlines and an EDF pop merges them in order.
        let mut last_by_class: BTreeMap<PriorityClass, f64> = BTreeMap::new();
        for (seq, template, class, deadline) in drained {
            if let Some(prev) = last_by_class.get(&class) {
                assert!(
                    deadline >= *prev,
                    "seed {seed}: seq {seq} ({template}, {class}) with deadline \
                     {deadline} dequeued after deadline {prev} in the same class"
                );
            }
            last_by_class.insert(class, deadline);
        }
    }
}

#[test]
fn equal_deadline_ties_follow_wfq_finish_tag_order() {
    let templates = ["QT1", "QT2", "QT3"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0xEDF0_0002 ^ seed);
        let mut weights = BTreeMap::new();
        for t in &templates {
            weights.insert((*t).to_string(), *rng.choose(&[1.0, 2.0, 4.0]));
        }
        let arrivals = random_arrivals(&mut rng, &templates);
        // All enqueued at t=0: with the budget enabled every ticket gets
        // the *same* finite deadline, so EDF is pure tie-break territory
        // and the drain must match the deadline-free WFQ reference.
        let reference = drain_with_quota(&arrivals, &weights, 1);
        let ctl = edf_controller(weights.clone());
        assert!(!ctl.set_capacity(&ServerId::new("s0"), 1, SimTime::ZERO));
        for (template, class) in &arrivals {
            ctl.enqueue("SELECT 1", template, *class, SimTime::ZERO)
                .expect("depth bound disabled; enqueue cannot shed");
        }
        let mut tied = Vec::with_capacity(arrivals.len());
        while ctl.queue_depth() > 0 {
            let batch = ctl.dequeue_batch(SimTime::ZERO);
            assert!(batch.shed.is_empty());
            for t in batch.admitted {
                tied.push((t.seq, t.template, t.class));
            }
        }
        assert_eq!(
            reference, tied,
            "seed {seed}: equal finite deadlines must drain in WFQ finish-tag order"
        );
    }
}

#[test]
fn edf_drain_order_is_invariant_under_quota_chunking() {
    let templates = ["QT1", "QT2", "QT3", "QT4", "QT5"];
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from(0xEDF0_0003 ^ seed);
        let mut weights = BTreeMap::new();
        for t in &templates {
            weights.insert((*t).to_string(), *rng.choose(&[1.0, 2.0, 3.0]));
        }
        let arrivals = random_arrivals(&mut rng, &templates);
        let reference = drain_staggered_with_quota(&arrivals, &weights, 1);
        for quota in [2u32, 5, 16] {
            let chunked = drain_staggered_with_quota(&arrivals, &weights, quota);
            assert_eq!(
                reference, chunked,
                "seed {seed}: EDF drain order changed under quota {quota}"
            );
        }
    }
}
