//! The hot-spot mechanism §4 warns about: *"if there is a large number of
//! similar queries that use the same plan, then the remote servers
//! involved in this plan can get overloaded, rendering the original
//! statistics invalid."*
//!
//! Concurrency is emulated deterministically: while one query of a batch
//! executes, the other batch members assigned to the same server hold
//! in-flight guards, raising that server's utilization (each in-flight
//! query contributes `per_query_load`). Concentrating a batch on one
//! replica must therefore cost more than spreading it.

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, SimTime, Value};

use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use std::sync::Arc;

fn server(name: &str) -> Arc<RemoteServer> {
    let mut t = Table::new(
        "events",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ]),
    );
    for i in 0..5_000i64 {
        t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 25)]))
            .unwrap();
    }
    let mut c = Catalog::new();
    c.register(t);
    let mut profile = ServerProfile::new(ServerId::new(name));
    profile.per_query_load = 0.12; // pronounced feedback for the test
    RemoteServer::new(profile, c)
}

const SQL: &str = "SELECT v, COUNT(*) AS n FROM events GROUP BY v";

/// Execute a batch of `n` queries over the given per-query server
/// assignment, holding in-flight guards for every other batch member on
/// its assigned server while each query runs. Returns total service ms.
fn run_batch(servers: &[Arc<RemoteServer>], assignment: &[usize]) -> f64 {
    let plans: Vec<_> = servers
        .iter()
        .map(|s| s.explain(SQL, SimTime::ZERO).unwrap().remove(0).descriptor)
        .collect();
    let mut total = 0.0;
    for (i, &target) in assignment.iter().enumerate() {
        // Everyone else in the batch is concurrently in flight.
        let guards: Vec<_> = assignment
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &srv)| servers[srv].load().begin_query())
            .collect();
        let result = servers[target]
            .execute(&plans[target], SimTime::ZERO)
            .unwrap();
        total += result.elapsed.as_millis();
        drop(guards);
    }
    total
}

#[test]
fn concentrating_a_batch_creates_a_hot_spot() {
    let servers = vec![server("S1"), server("R1")];
    let all_on_one = run_batch(&servers, &[0; 8]);
    let spread = run_batch(&servers, &[0, 1, 0, 1, 0, 1, 0, 1]);
    assert!(
        all_on_one > spread * 1.5,
        "hot spot must cost more: concentrated {all_on_one:.1} vs spread {spread:.1}"
    );
}

#[test]
fn hot_spot_grows_with_batch_size() {
    let servers = vec![server("S1")];
    let small = run_batch(&servers, &[0; 2]) / 2.0;
    let large = run_batch(&servers, &[0; 10]) / 10.0;
    assert!(
        large > small * 1.5,
        "per-query cost grows with concurrency: {small:.2} vs {large:.2}"
    );
}

#[test]
fn idle_replica_is_unaffected_by_the_neighbors_hot_spot() {
    let servers = [server("S1"), server("R1")];
    // Batch of 6 on S1; measure one query on R1 under that regime.
    let plans: Vec<_> = servers
        .iter()
        .map(|s| s.explain(SQL, SimTime::ZERO).unwrap().remove(0).descriptor)
        .collect();
    let guards: Vec<_> = (0..6).map(|_| servers[0].load().begin_query()).collect();
    let busy_neighbor = servers[1].execute(&plans[1], SimTime::ZERO).unwrap();
    drop(guards);
    let calm = servers[1].execute(&plans[1], SimTime::ZERO).unwrap();
    assert!(
        (busy_neighbor.elapsed.as_millis() - calm.elapsed.as_millis()).abs() < 1e-9,
        "replicas have independent load states"
    );
}
