//! Randomized test: on randomly generated tables and randomly composed
//! queries from the supported subset, the optimized engine and the naive
//! reference evaluator must agree exactly.
//!
//! Driven by the workspace's deterministic `Pcg32` so the suite runs
//! offline and failures reproduce from the fixed seeds.

use load_aware_federation::common::{Column, ColumnBatch, DataType, Pcg32, Row, Schema, Value};
use load_aware_federation::engine::{execute_batches, naive, rowexec, Engine};
use load_aware_federation::storage::{Catalog, ColumnSpec, Table, TableSpec};
use qcc_sql::parse_select;

/// Random small tables `ta(a, b, s)` and `tb(a, c)`.
fn random_catalog(rng: &mut Pcg32) -> Catalog {
    let mut ta = Table::new(
        "ta",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("s", DataType::Str),
        ]),
    );
    let n_a = rng.range_u64(0, 40);
    for _ in 0..n_a {
        ta.insert(Row::new(vec![
            Value::Int(rng.range_i64(0, 20)),
            Value::Int(rng.range_i64(-5, 5)),
            Value::Str((*rng.choose(b"abc") as char).to_string()),
        ]))
        .unwrap();
    }
    let mut tb = Table::new(
        "tb",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("c", DataType::Int),
        ]),
    );
    let n_b = rng.range_u64(0, 40);
    for _ in 0..n_b {
        tb.insert(Row::new(vec![
            Value::Int(rng.range_i64(0, 20)),
            Value::Int(rng.range_i64(-5, 5)),
        ]))
        .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register(ta);
    catalog.register(tb);
    catalog.create_index("ta", "a").unwrap();
    catalog
}

fn random_predicate(rng: &mut Pcg32) -> String {
    match rng.range_u64(0, 7) {
        0 => format!("ta.a > {}", rng.range_i64(0, 20)),
        1 => format!("ta.a = {}", rng.range_i64(0, 20)),
        2 => format!("ta.b <= {}", rng.range_i64(-5, 5)),
        3 => format!(
            "ta.a BETWEEN {} AND {}",
            rng.range_i64(0, 10),
            rng.range_i64(5, 20)
        ),
        4 => "ta.s IN ('a', 'b')".to_string(),
        5 => "ta.s LIKE 'a%'".to_string(),
        _ => format!(
            "ta.a < {} OR ta.b = {}",
            rng.range_i64(0, 20),
            rng.range_i64(-5, 5)
        ),
    }
}

/// Random queries over the two tables, spanning scans, joins, predicates,
/// grouping, ordering and limits.
fn random_query(rng: &mut Pcg32) -> String {
    let p = random_predicate(rng);
    match rng.range_u64(0, 6) {
        0 => {
            let mut q = format!("SELECT ta.a, ta.b FROM ta WHERE {p} ORDER BY ta.a, ta.b, ta.s");
            if rng.next_f64() < 0.5 {
                q.push_str(&format!(" LIMIT {}", rng.range_u64(0, 10)));
            }
            q
        }
        1 => format!(
            "SELECT ta.a, tb.c FROM ta JOIN tb ON ta.a = tb.a WHERE {p} \
             ORDER BY ta.a, tb.c, ta.b"
        ),
        2 => format!(
            "SELECT ta.s, COUNT(*) AS n, SUM(ta.b) AS t, MIN(ta.a) AS lo \
             FROM ta WHERE {p} GROUP BY ta.s ORDER BY ta.s"
        ),
        3 => format!(
            "SELECT ta.s, COUNT(*) AS n, AVG(tb.c) AS m FROM ta JOIN tb ON ta.a = tb.a \
             WHERE {p} GROUP BY ta.s HAVING COUNT(*) > 1 ORDER BY ta.s"
        ),
        4 => "SELECT DISTINCT ta.s FROM ta ORDER BY ta.s".to_string(),
        _ => "SELECT COUNT(*), SUM(ta.b), MAX(ta.a), COUNT(DISTINCT ta.s) FROM ta".to_string(),
    }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|x, y| x.values().cmp(y.values()));
    rows
}

#[test]
fn engine_agrees_with_naive() {
    let mut rng = Pcg32::seed_from(301);
    for case in 0..128 {
        let catalog = random_catalog(&mut rng);
        let sql = random_query(&mut rng);
        let engine = Engine::new(catalog);
        let stmt = parse_select(&sql).expect("generated SQL parses");
        let expected = naive::evaluate(&stmt, engine.catalog())
            .unwrap_or_else(|e| panic!("case {case}: naive failed on {sql}: {e}"));
        let (actual, _) = engine
            .execute_sql(&sql)
            .unwrap_or_else(|e| panic!("case {case}: engine failed on {sql}: {e}"));
        // Queries whose output order is fully determined by ORDER BY could
        // compare directly, but LIMIT under ties admits any valid subset;
        // compare per-query accordingly.
        if sql.contains("LIMIT") {
            assert_eq!(
                actual.len(),
                expected.len(),
                "case {case}: row count for {sql}"
            );
        } else {
            assert_eq!(
                sorted(actual),
                sorted(expected),
                "case {case}: rows for {sql}"
            );
        }
    }
}

#[test]
fn every_offered_plan_is_equivalent() {
    let mut rng = Pcg32::seed_from(302);
    let mut multi_plan_cases = 0;
    for case in 0..128 {
        // All alternative plans the engine offers (seq vs index paths)
        // must produce identical results.
        let catalog = random_catalog(&mut rng);
        let sql = random_query(&mut rng);
        let engine = Engine::new(catalog);
        let plans = engine.explain(&sql).expect("plans");
        if plans.len() <= 1 {
            continue;
        }
        multi_plan_cases += 1;
        let reference: Vec<Row> = {
            let (rows, _) = engine.execute_plan(&plans[0].plan).expect("plan 0 runs");
            sorted(rows)
        };
        for p in &plans[1..] {
            let (rows, _) = engine.execute_plan(&p.plan).expect("alt plan runs");
            if sql.contains("LIMIT") {
                assert_eq!(rows.len(), reference.len(), "case {case}");
            } else {
                assert_eq!(
                    sorted(rows),
                    reference.clone(),
                    "case {case}: plan divergence for {sql}"
                );
            }
        }
    }
    assert!(
        multi_plan_cases > 10,
        "expected the generator to hit multi-plan queries, got {multi_plan_cases}"
    );
}

fn batch_rows(batches: &[ColumnBatch]) -> Vec<Row> {
    batches.iter().flat_map(ColumnBatch::to_rows).collect()
}

/// The columnar executor must be observationally identical to the
/// row-at-a-time reference: same rows IN THE SAME ORDER (both executors
/// preserve scan/probe/first-seen order) and the exact same virtual-time
/// `Work` (bit-identical f64 accounting — zone-map pruning and batching
/// may change wall-clock time but never virtual time).
#[test]
fn columnar_engine_matches_row_engine() {
    let mut rng = Pcg32::seed_from(303);
    let mut plans_checked = 0usize;
    for case in 0..128 {
        let catalog = random_catalog(&mut rng);
        let sql = random_query(&mut rng);
        let engine = Engine::new(catalog);
        let plans = engine.explain(&sql).expect("plans");
        for (pi, p) in plans.iter().enumerate() {
            let (rrows, rwork) =
                rowexec::execute_rows(&p.plan, engine.catalog(), engine.cost_model())
                    .unwrap_or_else(|e| {
                        panic!("case {case} plan {pi}: row engine failed on {sql}: {e}")
                    });
            let (batches, bwork) = execute_batches(&p.plan, engine.catalog(), engine.cost_model())
                .unwrap_or_else(|e| {
                    panic!("case {case} plan {pi}: batch engine failed on {sql}: {e}")
                });
            assert_eq!(
                batch_rows(&batches),
                rrows,
                "case {case} plan {pi}: row divergence for {sql}"
            );
            assert_eq!(
                bwork, rwork,
                "case {case} plan {pi}: virtual-time Work divergence for {sql}"
            );
            plans_checked += 1;
        }
    }
    assert!(
        plans_checked > 128,
        "too few plans exercised: {plans_checked}"
    );
}

/// Scenario-shaped tables (the §5 schema at reduced scale) through the four
/// paper query templates: both executors agree exactly, plan by plan.
#[test]
fn columnar_engine_matches_row_engine_on_scenario_templates() {
    const LARGE: u64 = 400;
    const SMALL: u64 = 20;
    let specs = vec![
        TableSpec::new(
            "big_a",
            LARGE,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "grp".into(),
                    lo: 0,
                    hi: SMALL as i64,
                },
                ColumnSpec::FloatUniform {
                    name: "val".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
                ColumnSpec::IntUniform {
                    name: "sel".into(),
                    lo: 0,
                    hi: 10_000,
                },
            ],
        ),
        TableSpec::new(
            "big_d",
            LARGE,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "grp".into(),
                    lo: 0,
                    hi: SMALL as i64,
                },
                ColumnSpec::FloatUniform {
                    name: "val".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
                ColumnSpec::IntUniform {
                    name: "sel".into(),
                    lo: 0,
                    hi: 10_000,
                },
            ],
        ),
        TableSpec::new(
            "big_b",
            LARGE,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "a_id".into(),
                    lo: 0,
                    hi: LARGE as i64,
                },
                ColumnSpec::IntUniform {
                    name: "qty".into(),
                    lo: 0,
                    hi: 100,
                },
            ],
        ),
        TableSpec::new(
            "big_c",
            LARGE,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::IntUniform {
                    name: "b_id".into(),
                    lo: 0,
                    hi: LARGE as i64,
                },
                ColumnSpec::IntUniform {
                    name: "flag".into(),
                    lo: 0,
                    hi: 200,
                },
            ],
        ),
        TableSpec::new(
            "small_s",
            SMALL,
            vec![
                ColumnSpec::Serial { name: "id".into() },
                ColumnSpec::StrPool {
                    name: "cat".into(),
                    pool_size: 10,
                },
                ColumnSpec::FloatUniform {
                    name: "bonus".into(),
                    lo: 0.0,
                    hi: 100.0,
                },
            ],
        ),
    ];
    let mut catalog = Catalog::new();
    for (i, spec) in specs.iter().enumerate() {
        catalog.register(spec.generate(0xC01A + i as u64));
    }
    catalog.create_index("big_a", "sel").unwrap();
    catalog.create_index("big_a", "id").unwrap();
    catalog.create_index("big_d", "sel").unwrap();
    catalog.create_index("big_c", "flag").unwrap();
    let engine = Engine::new(catalog);

    for qt in qcc_workload::ALL_QUERY_TYPES {
        for instance in 0..4u32 {
            let sql = qt.sql(instance);
            let plans = engine.explain(&sql).expect("plans");
            assert!(!plans.is_empty(), "{qt} instance {instance}: no plans");
            for (pi, p) in plans.iter().enumerate() {
                let (rrows, rwork) =
                    rowexec::execute_rows(&p.plan, engine.catalog(), engine.cost_model())
                        .unwrap_or_else(|e| panic!("{qt}#{instance} plan {pi}: row engine: {e}"));
                let (batches, bwork) =
                    execute_batches(&p.plan, engine.catalog(), engine.cost_model())
                        .unwrap_or_else(|e| panic!("{qt}#{instance} plan {pi}: batch engine: {e}"));
                assert_eq!(
                    batch_rows(&batches),
                    rrows,
                    "{qt}#{instance} plan {pi}: rows"
                );
                assert_eq!(bwork, rwork, "{qt}#{instance} plan {pi}: Work");
            }
        }
    }
}
