//! Property test: on randomly generated tables and randomly composed
//! queries from the supported subset, the optimized engine and the naive
//! reference evaluator must agree exactly.

use load_aware_federation::common::{Column, DataType, Row, Schema, Value};
use load_aware_federation::engine::{naive, Engine};
use load_aware_federation::storage::{Catalog, Table};
use proptest::prelude::*;
use qcc_sql::parse_select;

/// Random small tables `ta(a, b, s)` and `tb(a, c)`.
fn catalog_strategy() -> impl Strategy<Value = Catalog> {
    let row_a = (0i64..20, -5i64..5, "[a-c]{1}");
    let row_b = (0i64..20, -5i64..5);
    (
        prop::collection::vec(row_a, 0..40),
        prop::collection::vec(row_b, 0..40),
    )
        .prop_map(|(rows_a, rows_b)| {
            let mut ta = Table::new(
                "ta",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                    Column::new("s", DataType::Str),
                ]),
            );
            for (a, b, s) in rows_a {
                ta.insert(Row::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::Str(s),
                ]))
                .unwrap();
            }
            let mut tb = Table::new(
                "tb",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("c", DataType::Int),
                ]),
            );
            for (a, c) in rows_b {
                tb.insert(Row::new(vec![Value::Int(a), Value::Int(c)]))
                    .unwrap();
            }
            let mut catalog = Catalog::new();
            catalog.register(ta);
            catalog.register(tb);
            catalog.create_index("ta", "a").unwrap();
            catalog
        })
}

/// Random queries over the two tables, spanning scans, joins, predicates,
/// grouping, ordering and limits.
fn query_strategy() -> impl Strategy<Value = String> {
    let predicate = prop_oneof![
        (0i64..20).prop_map(|k| format!("ta.a > {k}")),
        (0i64..20).prop_map(|k| format!("ta.a = {k}")),
        (-5i64..5).prop_map(|k| format!("ta.b <= {k}")),
        (0i64..10, 5i64..20).prop_map(|(lo, hi)| format!("ta.a BETWEEN {lo} AND {hi}")),
        Just("ta.s IN ('a', 'b')".to_string()),
        Just("ta.s LIKE 'a%'".to_string()),
        (0i64..20, -5i64..5).prop_map(|(k, b)| format!("ta.a < {k} OR ta.b = {b}")),
    ];
    let single = (predicate.clone(), proptest::option::of(0u64..10)).prop_map(|(p, limit)| {
        let mut q = format!("SELECT ta.a, ta.b FROM ta WHERE {p} ORDER BY ta.a, ta.b, ta.s");
        if let Some(l) = limit {
            q.push_str(&format!(" LIMIT {l}"));
        }
        q
    });
    let join = predicate.clone().prop_map(|p| {
        format!(
            "SELECT ta.a, tb.c FROM ta JOIN tb ON ta.a = tb.a WHERE {p} \
             ORDER BY ta.a, tb.c, ta.b"
        )
    });
    let agg = predicate.clone().prop_map(|p| {
        format!(
            "SELECT ta.s, COUNT(*) AS n, SUM(ta.b) AS t, MIN(ta.a) AS lo \
             FROM ta WHERE {p} GROUP BY ta.s ORDER BY ta.s"
        )
    });
    let join_agg = predicate.prop_map(|p| {
        format!(
            "SELECT ta.s, COUNT(*) AS n, AVG(tb.c) AS m FROM ta JOIN tb ON ta.a = tb.a \
             WHERE {p} GROUP BY ta.s HAVING COUNT(*) > 1 ORDER BY ta.s"
        )
    });
    let distinct = Just("SELECT DISTINCT ta.s FROM ta ORDER BY ta.s".to_string());
    let global_agg =
        Just("SELECT COUNT(*), SUM(ta.b), MAX(ta.a), COUNT(DISTINCT ta.s) FROM ta".to_string());
    prop_oneof![single, join, agg, join_agg, distinct, global_agg]
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|x, y| x.values().cmp(y.values()));
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_agrees_with_naive(catalog in catalog_strategy(), sql in query_strategy()) {
        let engine = Engine::new(catalog);
        let stmt = parse_select(&sql).expect("generated SQL parses");
        let expected = naive::evaluate(&stmt, engine.catalog())
            .unwrap_or_else(|e| panic!("naive failed on {sql}: {e}"));
        let (actual, _) = engine
            .execute_sql(&sql)
            .unwrap_or_else(|e| panic!("engine failed on {sql}: {e}"));
        // Queries whose output order is fully determined by ORDER BY could
        // compare directly, but LIMIT under ties admits any valid subset;
        // compare per-query accordingly.
        if sql.contains("LIMIT") {
            prop_assert_eq!(actual.len(), expected.len(), "row count for {}", &sql);
        } else {
            prop_assert_eq!(sorted(actual), sorted(expected), "rows for {}", &sql);
        }
    }

    #[test]
    fn every_offered_plan_is_equivalent(catalog in catalog_strategy(), sql in query_strategy()) {
        // All alternative plans the engine offers (seq vs index paths)
        // must produce identical results.
        let engine = Engine::new(catalog);
        let plans = engine.explain(&sql).expect("plans");
        prop_assume!(plans.len() > 1);
        let reference: Vec<Row> = {
            let (rows, _) = engine.execute_plan(&plans[0].plan).expect("plan 0 runs");
            sorted(rows)
        };
        for p in &plans[1..] {
            let (rows, _) = engine.execute_plan(&p.plan).expect("alt plan runs");
            if sql.contains("LIMIT") {
                prop_assert_eq!(rows.len(), reference.len());
            } else {
                prop_assert_eq!(sorted(rows), reference.clone(), "plan divergence for {}", &sql);
            }
        }
    }
}
