//! Golden equivalence for the observability layer: the qcc-obs metrics
//! snapshot and the JSONL event journal must be **byte-identical** for any
//! worker-pool width. Counters are commutative; everything order-sensitive
//! (journal events, gauges, histograms) flows through the `Deferred`
//! buffer and is applied at the gather barrier in task order — so the
//! recorded story of a run is as deterministic as the run itself.
//!
//! The same run doubles as the regression test for the adaptive probe
//! cycle: `probe_cycles_total` must be nonzero, proving the availability
//! daemon's mid-phase `run_due_probes` loop is actually wired into the
//! experiment driver (it used to be dead outside phase boundaries).

use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::experiment::run_phases_on;
use load_aware_federation::workload::{PhaseSchedule, Routing, Scenario, ScenarioConfig};

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// Run two contrasting phases with a probe cadence fast enough to come due
/// between batches at tiny-scenario timescales, and return the full obs
/// state as rendered text.
fn run_snapshots(threads: usize) -> (String, String, u64) {
    let scenario = Scenario::build_with_qcc(
        QccConfig {
            probe_interval_ms: 4.0,
            probe_interval_bounds_ms: (1.0, 50.0),
            ..QccConfig::default()
        },
        ScenarioConfig {
            threads,
            ..ScenarioConfig::tiny()
        },
    );
    let schedule = PhaseSchedule {
        phases: PhaseSchedule::paper_table1().phases[..2].to_vec(),
    };
    let result = run_phases_on(&scenario, Routing::Qcc, &schedule, 2, 1);
    assert!(
        result.phases.iter().all(|p| p.metrics.is_some()),
        "obs-on scenarios embed a metrics snapshot in every phase result"
    );
    let probe_cycles = scenario.obs.counter_value("probe_cycles_total", &[]);
    (
        scenario.obs.metrics_snapshot(),
        scenario.obs.journal_snapshot(),
        probe_cycles,
    )
}

#[test]
fn obs_snapshots_are_byte_identical_across_thread_counts() {
    let (metrics_ref, journal_ref, probe_cycles) = run_snapshots(1);
    assert!(!metrics_ref.is_empty(), "metrics snapshot must be nonempty");
    assert!(!journal_ref.is_empty(), "journal must be nonempty");
    assert!(
        probe_cycles > 0,
        "the adaptive probe cycle must run mid-phase, not just at boundaries"
    );
    // The reference journal tells the whole story: compiles, fragments,
    // query lifecycles, probes, and calibration seeds. ("merge" events
    // need a cross-source split, which this single-table workload never
    // produces — the federation crate's merge tests cover that kind.)
    for kind in [
        "\"kind\":\"compile\"",
        "\"kind\":\"fragment\"",
        "\"kind\":\"query_submit\"",
        "\"kind\":\"query_complete\"",
        "\"kind\":\"probe\"",
        "\"kind\":\"calibration_seed\"",
    ] {
        assert!(journal_ref.contains(kind), "journal missing {kind}");
    }
    for threads in &THREAD_COUNTS[1..] {
        let (metrics, journal, cycles) = run_snapshots(*threads);
        assert_eq!(
            metrics, metrics_ref,
            "threads={threads}: metrics snapshot diverged from sequential reference"
        );
        assert_eq!(
            journal, journal_ref,
            "threads={threads}: journal diverged from sequential reference"
        );
        assert_eq!(
            cycles, probe_cycles,
            "threads={threads}: probe cadence drifted"
        );
    }
}

#[test]
fn obs_off_records_nothing_and_changes_nothing() {
    let on = Scenario::build_with(
        Routing::Qcc,
        ScenarioConfig {
            threads: 2,
            ..ScenarioConfig::tiny()
        },
    );
    let off = Scenario::build_with(
        Routing::Qcc,
        ScenarioConfig {
            threads: 2,
            obs_enabled: false,
            ..ScenarioConfig::tiny()
        },
    );
    let schedule = PhaseSchedule {
        phases: PhaseSchedule::paper_table1().phases[..1].to_vec(),
    };
    let a = run_phases_on(&on, Routing::Qcc, &schedule, 2, 1);
    let b = run_phases_on(&off, Routing::Qcc, &schedule, 2, 1);
    // Instrumentation is observation, not participation: virtual-time
    // results are bit-identical with the recorder off.
    assert_eq!(a.phases[0].avg_ms.to_bits(), b.phases[0].avg_ms.to_bits());
    assert!(a.phases[0].metrics.is_some());
    assert!(b.phases[0].metrics.is_none());
    assert!(!off.obs.is_enabled());
    assert_eq!(off.obs.journal_len(), 0);
    assert!(off.obs.metrics_snapshot().is_empty());
}
