//! End-to-end correctness: the federation must return exactly the rows a
//! single local engine (and the naive reference evaluator) produces over
//! the same data, regardless of routing, replication, or decomposition.

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::engine::{naive, Engine};
use load_aware_federation::federation::{
    Federation, FederationConfig, NicknameCatalog, PassthroughMiddleware,
};
use load_aware_federation::netsim::{Link, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use qcc_sql::parse_select;
use std::sync::Arc;

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| a.values().cmp(b.values()));
    rows
}

// Tables are kept small: the naive reference evaluator cross-joins all
// FROM tables before filtering, so the 3-way join materializes
// 40 × 200 × 120 = 960 000 intermediate rows.
fn tables() -> (Table, Table, Table) {
    let mut users = Table::new(
        "users",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("country", DataType::Str),
        ]),
    );
    for i in 0..40i64 {
        users
            .insert(Row::new(vec![
                Value::Int(i),
                Value::from(["de", "fr", "jp", "us"][(i % 4) as usize]),
            ]))
            .unwrap();
    }
    let mut orders = Table::new(
        "orders",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("user_id", DataType::Int),
            Column::new("amount", DataType::Float),
        ]),
    );
    for i in 0..200i64 {
        orders
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Int(i % 40),
                Value::Float((i % 37) as f64),
            ]))
            .unwrap();
    }
    let mut items = Table::new(
        "items",
        Schema::new(vec![
            Column::new("order_id", DataType::Int),
            Column::new("sku", DataType::Str),
        ]),
    );
    for i in 0..120i64 {
        items
            .insert(Row::new(vec![
                Value::Int(i % 200),
                Value::Str(format!("sku{}", i % 20)),
            ]))
            .unwrap();
    }
    (users, orders, items)
}

/// Federation where all three tables are co-hosted on two replicas.
fn replicated_federation() -> Federation {
    let (users, orders, items) = tables();
    let make = |id: &str| {
        let mut c = Catalog::new();
        c.register(users.clone());
        c.register(orders.clone());
        c.register(items.clone());
        RemoteServer::new(ServerProfile::new(ServerId::new(id)), c)
    };
    let s1 = make("S1");
    let s2 = make("S2");
    let mut net = Network::new();
    net.add_link(ServerId::new("S1"), Link::lan());
    net.add_link(ServerId::new("S2"), Link::lan());
    let net = Arc::new(net);
    let mut nicknames = NicknameCatalog::new();
    for t in [&users, &orders, &items] {
        nicknames.define(t.name(), t.schema().clone());
        nicknames
            .add_source(t.name(), ServerId::new("S1"), t.name())
            .unwrap();
        nicknames
            .add_source(t.name(), ServerId::new("S2"), t.name())
            .unwrap();
    }
    let qcc = Qcc::new(QccConfig::default());
    let mut fed = Federation::new(
        nicknames,
        SimClock::new(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    fed.add_wrapper(Arc::new(RelationalWrapper::new(s1, Arc::clone(&net))));
    fed.add_wrapper(Arc::new(RelationalWrapper::new(s2, net)));
    fed
}

/// Federation where each table lives on exactly one distinct server, so
/// every join crosses sources and merges at the integrator.
fn split_federation() -> Federation {
    let (users, orders, items) = tables();
    let mut net = Network::new();
    let mut nicknames = NicknameCatalog::new();
    let mut servers = Vec::new();
    for (i, t) in [&users, &orders, &items].iter().enumerate() {
        let id = ServerId::new(format!("H{i}"));
        let mut c = Catalog::new();
        c.register((*t).clone());
        servers.push(RemoteServer::new(ServerProfile::new(id.clone()), c));
        net.add_link(id.clone(), Link::lan());
        nicknames.define(t.name(), t.schema().clone());
        nicknames.add_source(t.name(), id, t.name()).unwrap();
    }
    let net = Arc::new(net);
    let mut fed = Federation::new(
        nicknames,
        SimClock::new(),
        Arc::new(PassthroughMiddleware::default()),
        FederationConfig::default(),
    );
    for s in servers {
        fed.add_wrapper(Arc::new(RelationalWrapper::new(s, Arc::clone(&net))));
    }
    fed
}

/// Ground truth: a single engine hosting all three tables.
fn reference_engine() -> Engine {
    let (users, orders, items) = tables();
    let mut c = Catalog::new();
    c.register(users);
    c.register(orders);
    c.register(items);
    Engine::new(c)
}

const QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM orders WHERE amount > 18.0",
    "SELECT country, COUNT(*) AS n FROM users GROUP BY country ORDER BY country",
    "SELECT u.country, SUM(o.amount) AS total FROM users u JOIN orders o \
     ON o.user_id = u.id GROUP BY u.country ORDER BY total DESC",
    "SELECT u.country, COUNT(*) AS n FROM users u JOIN orders o ON o.user_id = u.id \
     JOIN items i ON i.order_id = o.id WHERE o.amount > 5.0 \
     GROUP BY u.country HAVING COUNT(*) > 10 ORDER BY n DESC, u.country LIMIT 3",
    "SELECT DISTINCT sku FROM items ORDER BY sku LIMIT 7",
    "SELECT o.id, o.amount FROM orders o WHERE o.amount BETWEEN 10.0 AND 12.0 \
     ORDER BY o.id LIMIT 20",
    "SELECT u.id FROM users u WHERE u.country IN ('de', 'jp') AND u.id < 50 ORDER BY u.id",
    "SELECT AVG(amount), MIN(amount), MAX(amount), COUNT(DISTINCT user_id) FROM orders",
];

#[test]
fn federation_matches_local_engine_with_replicas() {
    let fed = replicated_federation();
    let engine = reference_engine();
    for sql in QUERIES {
        let out = fed.submit(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let (local, _) = engine.execute_sql(sql).unwrap();
        assert_eq!(
            sorted(out.rows),
            sorted(local),
            "federation vs local engine mismatch for {sql}"
        );
    }
}

#[test]
fn federation_matches_local_engine_when_split_across_sources() {
    let fed = split_federation();
    let engine = reference_engine();
    for sql in QUERIES {
        let out = fed.submit(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let (local, _) = engine.execute_sql(sql).unwrap();
        assert_eq!(
            sorted(out.rows),
            sorted(local),
            "split-source merge mismatch for {sql}"
        );
    }
}

#[test]
fn engine_matches_naive_reference() {
    let engine = reference_engine();
    for sql in QUERIES {
        let stmt = parse_select(sql).unwrap();
        let expected = naive::evaluate(&stmt, engine.catalog()).unwrap();
        let (actual, _) = engine.execute_sql(sql).unwrap();
        assert_eq!(
            sorted(actual),
            sorted(expected),
            "engine vs naive mismatch for {sql}"
        );
    }
}

#[test]
fn repeated_submissions_are_deterministic() {
    let fed = replicated_federation();
    let sql = QUERIES[2];
    let a = fed.submit(sql).unwrap();
    let b = fed.submit(sql).unwrap();
    assert_eq!(sorted(a.rows), sorted(b.rows));
}

#[test]
fn every_candidate_global_plan_yields_identical_rows() {
    // Plan choice must never affect results: execute each fragment
    // candidate combination of a cross-source join and compare.
    let fed = split_federation();
    let sql = QUERIES[2];
    let (_, candidates) = fed.explain_global(sql).unwrap();
    assert!(!candidates.is_empty());
    let baseline = fed.submit(sql).unwrap();
    // Re-submit several times; with a passthrough middleware the choice is
    // stable, so also check at least that repeated runs agree with compile.
    for _ in 0..3 {
        let out = fed.submit(sql).unwrap();
        assert_eq!(sorted(out.rows), sorted(baseline.rows.clone()));
    }
}
