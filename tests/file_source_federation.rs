//! A federated join across a relational source and a *file* source.
//!
//! Per the paper (§1, compile-time step 3), file wrappers return paths
//! without cost estimates; the QCC is then the only way such sources ever
//! become cost-comparable — daemon probes seed a factor and runtime
//! observations refine it (§2: the simulated-catalog machinery exists
//! precisely because "wrappers do not provide cost estimation").

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{
    Federation, FederationConfig, NicknameCatalog, DEFAULT_UNCOSTED,
};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::{file::FlatFile, FileWrapper, RelationalWrapper};
use std::sync::Arc;

fn world() -> (Federation, Arc<Qcc>) {
    // Relational source: a `machines` table on server DB1.
    let machines_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("rack", DataType::Str),
    ]);
    let mut machines = Table::new("machines", machines_schema.clone());
    for i in 0..50i64 {
        machines
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Str(format!("rack{}", i % 5)),
            ]))
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register(machines);
    let db1 = RemoteServer::new(ServerProfile::new(ServerId::new("DB1")), cat);

    // File source: a log file keyed by machine id.
    let logs_schema = Schema::new(vec![
        Column::new("machine_id", DataType::Int),
        Column::new("level", DataType::Str),
    ]);
    let mut log_rows = Vec::new();
    for i in 0..400i64 {
        log_rows.push(Row::new(vec![
            Value::Int(i % 50),
            // i % 7 spreads error lines across machines (and hence racks).
            Value::from(if i % 7 == 0 { "error" } else { "info" }),
        ]));
    }

    let mut network = Network::new();
    network.add_link(ServerId::new("DB1"), Link::lan());
    network.add_link(
        ServerId::new("FS1"),
        Link::new(1.0, 10_000.0, LoadProfile::Constant(0.0)),
    );
    let network = Arc::new(network);

    let file_wrapper = FileWrapper::new(ServerId::new("FS1"), Arc::clone(&network));
    file_wrapper.add_file(
        "logs",
        FlatFile {
            schema: logs_schema.clone(),
            rows: log_rows,
        },
    );

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("machines", machines_schema);
    nicknames.define("logs", logs_schema);
    nicknames
        .add_source("machines", ServerId::new("DB1"), "machines")
        .unwrap();
    nicknames
        .add_source("logs", ServerId::new("FS1"), "logs")
        .unwrap();

    let qcc = Qcc::new(QccConfig::default());
    let mut fed = Federation::new(
        nicknames,
        SimClock::new(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    fed.add_wrapper(Arc::new(RelationalWrapper::new(db1, network)));
    fed.add_wrapper(Arc::new(file_wrapper));
    (fed, qcc)
}

#[test]
fn join_across_relational_and_file_sources() {
    let (fed, _) = world();
    let out = fed
        .submit(
            "SELECT m.rack, COUNT(*) AS errors FROM machines m JOIN logs l \
             ON l.machine_id = m.id WHERE l.level = 'error' \
             GROUP BY m.rack ORDER BY m.rack",
        )
        .unwrap();
    // Expected counts derived from the same generation rule.
    let mut expected: std::collections::BTreeMap<String, i64> = Default::default();
    for i in (0..400i64).step_by(7) {
        let machine = i % 50;
        *expected.entry(format!("rack{}", machine % 5)).or_insert(0) += 1;
    }
    assert_eq!(out.rows.len(), expected.len());
    for row in &out.rows {
        let rack = row.get(0).as_str().unwrap();
        assert_eq!(row.get(1).as_i64().unwrap(), expected[rack], "{rack}");
    }
    assert_eq!(out.servers.len(), 2, "both source kinds participated");
}

#[test]
fn file_fragments_are_costed_with_the_default_until_calibrated() {
    let (fed, qcc) = world();
    let (_, candidates) = fed
        .explain_global("SELECT level FROM logs WHERE level = 'error'")
        .unwrap();
    assert_eq!(candidates.len(), 1);
    let frag = &candidates[0].fragments[0];
    assert!(frag.plan.cost.is_none(), "file wrapper reports no cost");
    assert!(
        (frag.effective_cost.total() - DEFAULT_UNCOSTED).abs() < 1e-9,
        "uncalibrated file fragments carry the default cost"
    );

    // After a few executions the QCC has learned a real factor for the
    // file source, so future estimates track observed behaviour.
    for _ in 0..3 {
        fed.submit("SELECT level FROM logs WHERE level = 'error'")
            .unwrap();
    }
    let factor = qcc.calibration.server_factor(&ServerId::new("FS1"));
    assert!(
        factor != 1.0,
        "runtime observations must have produced a factor, got {factor}"
    );
    let (_, candidates) = fed
        .explain_global("SELECT level FROM logs WHERE level = 'error'")
        .unwrap();
    let calibrated = candidates[0].fragments[0].effective_cost.total();
    assert!(
        (calibrated - DEFAULT_UNCOSTED).abs() > 1e-6,
        "calibration must move the default cost, got {calibrated}"
    );
}

#[test]
fn file_fragment_filters_before_shipping() {
    let (fed, _) = world();
    let out = fed
        .submit("SELECT machine_id FROM logs WHERE level = 'error' ORDER BY machine_id LIMIT 5")
        .unwrap();
    assert_eq!(out.rows.len(), 5);
    // All shipped rows satisfy the predicate (level column was consumed
    // at the access layer, only machine_id arrives).
    assert!(out.rows.iter().all(|r| r.len() == 1));
}
