//! Randomized test: resumable streamed execution, forcibly cancelled and
//! resumed at *every* chunk boundary, must reconstruct exactly the one-shot
//! result — byte-identical rows and a bit-identical [`Work`] record — on
//! randomly generated plans. This pins the cursor protocol the mid-query
//! reroute path relies on: a remainder picked up at cursor `k` (possibly at
//! a later virtual time) contributes precisely the chunks `k..` and never
//! distorts the work accounting the calibrator would see.
//!
//! Driven by the workspace's deterministic `Pcg32` so the suite runs
//! offline and failures reproduce from the fixed seed.

use load_aware_federation::common::{
    Column, DataType, Pcg32, Row, Schema, SimDuration, SimTime, Value,
};
use load_aware_federation::engine::rowexec;
use load_aware_federation::remote::{RemoteServer, RemoteStreamStatus, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};

/// One random table `t(a, b, s)`, sized well past a single columnar batch
/// so most plans stream multiple chunks.
fn random_catalog(rng: &mut Pcg32) -> Catalog {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("s", DataType::Str),
        ]),
    );
    let n = rng.range_u64(1500, 4000);
    for _ in 0..n {
        t.insert(Row::new(vec![
            Value::Int(rng.range_i64(0, 1000)),
            Value::Int(rng.range_i64(-50, 50)),
            Value::Str((*rng.choose(b"abcde") as char).to_string()),
        ]))
        .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register(t);
    catalog.create_index("t", "a").unwrap();
    catalog
}

/// Random queries biased toward wide results (multi-chunk streams), with a
/// few narrow shapes mixed in so the trivial single-chunk resume is covered
/// too.
fn random_query(rng: &mut Pcg32) -> String {
    match rng.range_u64(0, 6) {
        0 => format!("SELECT * FROM t WHERE t.a < {}", rng.range_i64(400, 1000)),
        1 => format!(
            "SELECT t.a, t.b FROM t WHERE t.b >= {} ORDER BY t.a, t.b, t.s",
            rng.range_i64(-50, 0)
        ),
        2 => format!(
            "SELECT t.a, t.s FROM t WHERE t.a BETWEEN {} AND {}",
            rng.range_i64(0, 200),
            rng.range_i64(500, 1000)
        ),
        3 => "SELECT t.a, t.b, t.s FROM t ORDER BY t.a, t.b, t.s".to_string(),
        4 => format!(
            "SELECT t.s, COUNT(*) AS n, SUM(t.b) AS tot FROM t WHERE t.a > {} \
             GROUP BY t.s ORDER BY t.s",
            rng.range_i64(0, 500)
        ),
        _ => format!(
            "SELECT t.a FROM t WHERE t.a = {} OR t.b = {}",
            rng.range_i64(0, 1000),
            rng.range_i64(-50, 50)
        ),
    }
}

#[test]
fn cancel_resume_at_every_boundary_matches_one_shot() {
    let mut rng = Pcg32::seed_from(401);
    let mut multi_chunk_cases = 0usize;
    for case in 0..48 {
        let catalog = random_catalog(&mut rng);
        let server = RemoteServer::new(ServerProfile::new("S1"), catalog);
        let sql = random_query(&mut rng);
        let plans = server
            .explain(&sql, SimTime::ZERO)
            .unwrap_or_else(|e| panic!("case {case}: explain failed on {sql}: {e}"));
        let plan = &plans[0].descriptor;

        // One-shot rowexec is the normative reference for both rows and
        // the Work record (f64 accounting is order-sensitive, so this is
        // a bit-level contract, not an approximate one).
        let (expected_rows, expected_work) = rowexec::execute_rows(
            plan,
            server.engine().catalog(),
            server.engine().cost_model(),
        )
        .unwrap_or_else(|e| panic!("case {case}: rowexec failed on {sql}: {e}"));

        let full = server
            .execute_stream(plan, SimTime::ZERO, 0, false)
            .unwrap_or_else(|e| panic!("case {case}: stream failed on {sql}: {e}"));
        assert_eq!(full.status, RemoteStreamStatus::Complete);
        if full.total_chunks > 1 {
            multi_chunk_cases += 1;
        }

        // Force a cancel at every chunk boundary: each resume call asks
        // for the remainder at cursor `k` but only the first chunk is
        // accepted before the next forced cancel. Resumes happen at
        // strictly increasing virtual times, as a rerouted remainder
        // would.
        let mut streamed_rows: Vec<Row> = Vec::new();
        let mut at = SimTime::ZERO;
        for cursor in 0..full.total_chunks {
            let rest = server
                .execute_stream(plan, at, cursor, false)
                .unwrap_or_else(|e| panic!("case {case}: resume at {cursor} failed: {e}"));
            assert_eq!(rest.status, RemoteStreamStatus::Complete);
            assert_eq!(rest.cursor, cursor, "case {case}: cursor echo");
            assert_eq!(
                rest.total_chunks, full.total_chunks,
                "case {case}: chunk count must be cursor-invariant"
            );
            assert_eq!(
                rest.delivered(),
                full.total_chunks - cursor,
                "case {case}: remainder size at cursor {cursor}"
            );
            // Every resumed execution reports the full plan's Work —
            // streaming chunks never splits or inflates the accounting.
            assert_eq!(
                rest.work.cpu_units.to_bits(),
                expected_work.cpu_units.to_bits(),
                "case {case}: cpu_units at cursor {cursor} for {sql}"
            );
            assert_eq!(rest.work.rows_scanned, expected_work.rows_scanned);
            assert_eq!(rest.work.rows_output, expected_work.rows_output);
            assert_eq!(rest.work.result_bytes, expected_work.result_bytes);
            streamed_rows.extend(rest.chunks[0].batch.to_rows());
            at = at + SimDuration::from_millis(1.0 + rest.elapsed.as_millis() / 2.0);
        }

        assert_eq!(
            streamed_rows,
            full.rows(),
            "case {case}: boundary-resumed rows diverge from the one-shot stream for {sql}"
        );
        assert_eq!(
            streamed_rows, expected_rows,
            "case {case}: boundary-resumed rows diverge from rowexec for {sql}"
        );
        assert_eq!(
            full.work.cpu_units.to_bits(),
            expected_work.cpu_units.to_bits(),
            "case {case}: one-shot stream Work for {sql}"
        );
    }
    assert!(
        multi_chunk_cases >= 24,
        "generator regressed: only {multi_chunk_cases}/48 cases streamed more than one chunk"
    );
}

#[test]
fn resume_past_end_is_rejected_and_at_end_is_empty() {
    let mut rng = Pcg32::seed_from(402);
    let catalog = random_catalog(&mut rng);
    let server = RemoteServer::new(ServerProfile::new("S1"), catalog);
    let plans = server
        .explain("SELECT * FROM t WHERE t.a < 900", SimTime::ZERO)
        .unwrap();
    let plan = &plans[0].descriptor;
    let full = server
        .execute_stream(plan, SimTime::ZERO, 0, false)
        .unwrap();
    assert!(full.total_chunks >= 2, "need a multi-chunk result");
    // Cursor exactly at the end: a legal, empty, zero-remainder stream.
    let done = server
        .execute_stream(plan, SimTime::ZERO, full.total_chunks, false)
        .unwrap();
    assert_eq!(done.delivered(), 0);
    assert_eq!(done.elapsed.as_millis(), 0.0);
    // Cursor past the end: a protocol error, not a silent truncation.
    assert!(server
        .execute_stream(plan, SimTime::ZERO, full.total_chunks + 1, false)
        .is_err());
}
