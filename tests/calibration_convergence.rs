//! Integration tests for §3's calibration mechanics: factors converge to
//! the true slowdown, track regime changes, and produce better routing
//! than raw estimates.

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::sync::Arc;

struct World {
    fast: Arc<RemoteServer>,
    federation: Federation,
    qcc: Arc<Qcc>,
}

fn world() -> World {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("v", DataType::Int),
    ]);
    let mut t = Table::new("t", schema.clone());
    for i in 0..5_000i64 {
        t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 100)]))
            .unwrap();
    }
    let mk = |name: &str, speed: f64| {
        let mut c = Catalog::new();
        c.register(t.clone());
        let mut p = ServerProfile::new(ServerId::new(name));
        p.speed = speed;
        RemoteServer::new(p, c)
    };
    let fast = mk("fast", 2.0);
    let slow = mk("slow", 1.0);
    let mut network = Network::new();
    for n in ["fast", "slow"] {
        network.add_link(ServerId::new(n), Link::lan());
    }
    let network = Arc::new(network);
    let mut nicknames = NicknameCatalog::new();
    nicknames.define("t", schema);
    nicknames
        .add_source("t", ServerId::new("fast"), "t")
        .unwrap();
    nicknames
        .add_source("t", ServerId::new("slow"), "t")
        .unwrap();
    let qcc = Qcc::new(QccConfig::default());
    let mut federation = Federation::new(
        nicknames,
        SimClock::new(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    federation.add_wrapper(Arc::new(RelationalWrapper::new(
        Arc::clone(&fast),
        Arc::clone(&network),
    )));
    federation.add_wrapper(Arc::new(RelationalWrapper::new(slow, network)));
    World {
        fast,
        federation,
        qcc,
    }
}

const SQL: &str = "SELECT v, COUNT(*) AS n FROM t WHERE v < 50 GROUP BY v";

#[test]
fn factor_stabilizes_under_steady_load() {
    let w = world();
    w.fast.load().set_background(LoadProfile::Constant(0.6));
    // Drive enough queries for the window to fill while the fast server
    // is still chosen (its calibrated cost stays competitive at 0.6 load).
    let mut factors = Vec::new();
    for _ in 0..12 {
        let _ = w.federation.submit(SQL).unwrap();
        factors.push(w.qcc.calibration.server_factor(&ServerId::new("fast")));
    }
    let tail: Vec<f64> = factors[factors.len() - 3..].to_vec();
    let spread = tail.iter().cloned().fold(f64::MIN, f64::max)
        - tail.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.05 * tail[0],
        "factor should stabilize, tail = {tail:?}"
    );
    // Under load the factor must exceed 1 (observed > unloaded estimate).
    assert!(tail[0] > 1.5, "loaded server factor {}", tail[0]);
}

#[test]
fn factor_tracks_load_increase() {
    let w = world();
    for _ in 0..6 {
        let _ = w.federation.submit(SQL).unwrap();
    }
    let idle = w.qcc.calibration.server_factor(&ServerId::new("fast"));

    w.fast.load().set_background(LoadProfile::Constant(0.8));
    // The fast server must keep being observed for its factor to track;
    // feed observations even if routing would prefer the slow server by
    // submitting repeatedly (exploration via optimistic windows keeps some
    // traffic on `fast` until its window fills with slow samples).
    for _ in 0..16 {
        let _ = w.federation.submit(SQL).unwrap();
    }
    let loaded = w.qcc.calibration.server_factor(&ServerId::new("fast"));
    // The window mixes pre- and post-load samples (routing shifts away as
    // the factor rises), so require a clear increase rather than the full
    // steady-state ratio.
    assert!(
        loaded > idle * 1.4,
        "factor should rise with load: idle {idle}, loaded {loaded}"
    );
    // Stale-factor caveat (documented in DESIGN.md): once routing avoids
    // `fast`, its factor cannot decay on its own — a re-calibration cycle
    // (reset + daemon probe) refreshes it, as the experiment driver does
    // at phase boundaries.
    w.fast.load().set_background(LoadProfile::Constant(0.0));
    w.qcc.calibration.reset_server(&ServerId::new("fast"));
    for _ in 0..4 {
        let _ = w.federation.submit(SQL).unwrap();
    }
    let recovered = w.qcc.calibration.server_factor(&ServerId::new("fast"));
    assert!(
        recovered < loaded,
        "after reset + fresh observations the factor falls: {recovered} vs {loaded}"
    );
}

#[test]
fn calibrated_routing_prefers_truly_faster_server() {
    // The fast server is loaded enough that the slow-but-idle replica is
    // truly faster. Raw estimates still say "fast"; calibration must
    // flip the choice within a few queries.
    let w = world();
    w.fast.load().set_background(LoadProfile::Constant(0.9));
    // The default config explores an alternative every 8th query of a
    // template (re-calibration), so judge the steady state by majority.
    let mut slow_hits = 0;
    for _ in 0..12 {
        let out = w.federation.submit(SQL).unwrap();
        if out.servers.contains(&qcc_common::ServerId::new("slow")) {
            slow_hits += 1;
        }
    }
    assert!(
        slow_hits >= 9,
        "routing should settle on the idle replica, got {slow_hits}/12"
    );
}

#[test]
fn ii_workload_factor_learns_end_to_end_gap() {
    let w = world();
    for _ in 0..6 {
        let _ = w.federation.submit(SQL).unwrap();
    }
    // The end-to-end observation includes network time the optimizer's
    // cost didn't model, so the workload factor settles somewhere
    // positive and finite (usually ≳1).
    let f = w.qcc.calibration.ii_factor("");
    assert!(f.is_finite() && f > 0.1, "ii factor {f}");
}

#[test]
fn records_pair_estimates_with_observations() {
    let w = world();
    let _ = w.federation.submit(SQL).unwrap();
    let runs = w.qcc.records.runs();
    assert!(!runs.is_empty());
    for r in &runs {
        let est = r.estimated_total.expect("relational fragments are costed");
        assert!(est > 0.0);
        assert!(r.observed_ms > 0.0);
    }
    let compiles = w.qcc.records.compiles();
    // Both candidate servers were consulted at compile time.
    let servers: std::collections::BTreeSet<_> =
        compiles.iter().map(|c| c.server.to_string()).collect();
    assert_eq!(servers.len(), 2);
}
