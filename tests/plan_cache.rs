//! The meta-wrapper plan cache (Figure 5: *"MW can compute the calibrated
//! runtime cost without having to consult the wrapper"*).

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::sync::Arc;

const SQL: &str = "SELECT COUNT(*) FROM t WHERE v > 3";

fn world(plan_cache: bool) -> (Federation, Arc<Qcc>) {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("v", DataType::Int),
    ]);
    let mut t = Table::new("t", schema.clone());
    for i in 0..500i64 {
        t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .unwrap();
    }
    let mut c = Catalog::new();
    c.register(t);
    let server = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), c);
    let mut net = Network::new();
    // A slow link makes the saved EXPLAIN round trip visible.
    net.add_link(
        ServerId::new("S1"),
        Link::new(20.0, 50_000.0, LoadProfile::Constant(0.0)),
    );
    let mut nicknames = NicknameCatalog::new();
    nicknames.define("t", schema);
    nicknames.add_source("t", ServerId::new("S1"), "t").unwrap();
    let qcc = Qcc::new(QccConfig {
        plan_cache,
        ..QccConfig::default()
    });
    let mut fed = Federation::new(
        nicknames,
        SimClock::new(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    fed.add_wrapper(Arc::new(RelationalWrapper::new(server, Arc::new(net))));
    (fed, qcc)
}

#[test]
fn repeated_statement_skips_the_explain_round_trip() {
    let (fed, qcc) = world(true);
    let first = fed.submit(SQL).unwrap();
    let second = fed.submit(SQL).unwrap();
    assert!(
        second.response_ms < first.response_ms - 30.0,
        "cache hit saves the EXPLAIN RTT: {} vs {}",
        first.response_ms,
        second.response_ms
    );
    let (hits, misses) = qcc.plan_cache.stats();
    assert!(hits >= 1, "hits {hits}");
    assert!(misses >= 1, "misses {misses}");
    // Results are identical either way.
    assert_eq!(first.rows, second.rows);
}

#[test]
fn cache_disabled_repays_the_round_trip_every_time() {
    let (fed, qcc) = world(false);
    let first = fed.submit(SQL).unwrap();
    let second = fed.submit(SQL).unwrap();
    assert!(
        (first.response_ms - second.response_ms).abs() < 1.0,
        "no cache: compile cost recurs ({} vs {})",
        first.response_ms,
        second.response_ms
    );
    assert_eq!(qcc.plan_cache.stats(), (0, 0));
}

#[test]
fn cached_plans_are_recalibrated_with_fresh_factors() {
    let (fed, qcc) = world(true);
    fed.submit(SQL).unwrap();
    let factor_before = qcc.calibration.server_factor(&ServerId::new("S1"));
    // Force a very different factor and recompile from cache: the
    // effective cost must reflect the new factor, not the cached one.
    qcc.calibration.reset_server(&ServerId::new("S1"));
    qcc.calibration
        .record_fragment(&ServerId::new("S1"), "ignored", 1.0, 50.0);
    let (_, candidates) = fed.explain_global(SQL).unwrap();
    let effective = candidates[0].fragments[0].effective_cost.total();
    let raw = candidates[0].fragments[0]
        .plan
        .cost
        .map(|c| c.total())
        .unwrap();
    assert!(
        (effective / raw - 50.0).abs() < 1e-6,
        "fresh factor applied to cached plan: {} vs raw {raw} (old factor {factor_before})",
        effective
    );
}
