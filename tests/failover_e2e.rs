//! End-to-end failover: a server drops mid-batch, the retry loop bans it
//! and reroutes, the availability daemon's fast re-probe detects recovery,
//! and routing opens back up — with the whole story readable from the
//! qcc-obs journal in causal order.
//!
//! This is also the regression test for the once-dead adaptive probe
//! cycle: the configured probe interval (5 s) is far longer than the whole
//! phase, so recovery can only be observed if (a) `run_due_probes` really
//! runs between measured batches and (b) a down server's re-probe interval
//! is clamped to the fast bound instead of waiting out the stale schedule.

use load_aware_federation::common::{FieldValue, ServerId, SimTime};
use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::experiment::run_phases_on;
use load_aware_federation::workload::{
    PhaseSchedule, QueryType, Routing, Scenario, ScenarioConfig,
};

/// Fast down-probe bound (virtual ms); the scheduled interval is 5 s.
const FAST_BOUND_MS: f64 = 0.5;

const INSTANCES: u32 = 8;

fn qcc_config() -> QccConfig {
    QccConfig {
        probe_interval_ms: 5_000.0,
        probe_interval_bounds_ms: (FAST_BOUND_MS, 10_000.0),
        ..QccConfig::default()
    }
}

fn schedule() -> PhaseSchedule {
    PhaseSchedule {
        // Phase 1: no background load; the outage is the only disturbance.
        phases: PhaseSchedule::paper_table1().phases[..1].to_vec(),
    }
}

#[test]
fn outage_mid_batch_bans_reroutes_and_restores() {
    // Dry run to learn when the measured batches happen in virtual time
    // (warm-up and cache warming occupy the first stretch of the phase).
    // The runs are deterministic, so the disturbed run follows the same
    // timeline up to the moment the outage begins.
    let baseline = Scenario::build_with_qcc(qcc_config(), ScenarioConfig::tiny());
    run_phases_on(&baseline, Routing::Qcc, &schedule(), INSTANCES, 1);
    let submits = baseline.obs.events_of("query_submit");
    assert_eq!(submits.len(), (INSTANCES * 4) as usize);
    // Batches of four queries are submitted together; batch b starts at
    // the 4b-th submit.
    let batch_at = |b: usize| submits[b * 4].at;
    let gap = batch_at(3).since(batch_at(2)).as_millis();
    assert!(gap > 0.0);

    // S3 vanishes just before batch 3 compiles, and stays gone long
    // enough that at least one between-batch probe finds it still down.
    let outage_start = SimTime::from_millis(batch_at(2).as_millis() + 0.5 * gap);
    let outage_end = SimTime::from_millis(outage_start.as_millis() + 2.6 * gap);
    let scenario = Scenario::build_with_qcc(qcc_config(), ScenarioConfig::tiny());
    let s3 = ServerId::new("S3");
    scenario
        .server("S3")
        .availability()
        .add_outage(outage_start, outage_end);

    // run_phases_on asserts every query succeeds, so reaching this point
    // at all means retry + failover actually absorbed the outage.
    let result = run_phases_on(&scenario, Routing::Qcc, &schedule(), INSTANCES, 1);
    assert_eq!(result.phases.len(), 1);

    let obs = &scenario.obs;
    let first_at = |kind: &str, server: Option<&str>| -> Option<SimTime> {
        obs.events_of(kind)
            .into_iter()
            .find(|e| server.is_none_or(|s| e.str_field("server") == Some(s)))
            .map(|e| e.at)
    };

    // The journal tells the failover story in causal order: the stale
    // cached plan walks into the outage (ban), the retry succeeds
    // elsewhere (reroute), the fast re-probe sees the server come back
    // (restore).
    let banned_at = first_at("server_banned", Some("S3")).expect("S3 banned during outage");
    let reroute_at = first_at("reroute", None).expect("banned query rerouted");
    let down_at = first_at("server_down", Some("S3")).expect("reliability marked S3 down");
    let restored_at = first_at("server_restored", Some("S3")).expect("probe saw S3 recover");
    assert!(banned_at >= outage_start && banned_at < outage_end);
    assert!(banned_at <= reroute_at, "ban precedes the reroute");
    assert!(down_at <= restored_at);
    assert!(
        restored_at >= outage_end,
        "restore can only be observed after the outage ends"
    );
    let rerouted = obs
        .events_of("reroute")
        .into_iter()
        .find(|e| e.at == reroute_at)
        .expect("reroute event present");
    let fallback = rerouted
        .str_field("servers")
        .expect("reroute names servers");
    assert!(
        !fallback.contains("S3"),
        "rerouted query must avoid the banned server, got {fallback}"
    );

    // Regression (dead probe cycle): with a 5 s schedule the restore is
    // only observable because down servers are re-probed at the fast
    // bound between batches; recovery must be seen within batch
    // granularity of the outage ending, not "eventually".
    let lag = restored_at.since(outage_end).as_millis();
    assert!(
        lag <= 3.0 * gap,
        "recovery detected {lag:.3} ms after outage end (batch gap {gap:.3} ms)"
    );

    // Regression (interval clamp): every probe of S3 fired while it was
    // down must have rescheduled at the fast bound, not the adaptive
    // interval derived from the 5 s default.
    let down_probes: Vec<_> = obs
        .events_of("probe")
        .into_iter()
        .filter(|e| {
            e.str_field("server") == Some("S3") && e.field("ok") == Some(&FieldValue::Bool(false))
        })
        .collect();
    assert!(
        !down_probes.is_empty(),
        "the daemon must have probed S3 during the outage"
    );
    for p in &down_probes {
        assert_eq!(
            p.field("interval_ms"),
            Some(&FieldValue::F64(FAST_BOUND_MS)),
            "down-server re-probe must clamp to the fast bound"
        );
    }

    // After recovery the server is routable again: reliability agrees,
    // and a fresh compile offers S3 candidates.
    let qcc = scenario.qcc.as_ref().expect("qcc routing");
    assert!(!qcc.reliability.is_down(&s3), "S3 healthy after restore");
    let (_, candidates) = scenario
        .federation
        .explain_global(&QueryType::QT1.sql(99))
        .expect("post-recovery compile succeeds");
    assert!(
        candidates.iter().any(|c| c.server_set().contains(&s3)),
        "post-recovery candidates include the restored server"
    );

    // And the counters agree with the journal.
    assert!(obs.counter_value("retries_total", &[]) >= 1);
    assert!(obs.counter_value("server_down_total", &[("server", "S3")]) >= 1);
    assert!(obs.counter_value("server_recovered_total", &[("server", "S3")]) >= 1);
}
