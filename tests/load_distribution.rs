//! Integration tests for §4's load distribution over the Figure 7/8
//! scenario: origin servers S1 and S2 with replicas R1 and R2, and a
//! federated join Q6 across the two nicknames.

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, Network, SimClock};
use load_aware_federation::qcc::{LoadBalanceMode, Qcc, QccConfig, SimulatedFederation};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

const Q6: &str = "SELECT c.seg, COUNT(*) AS n FROM orders o JOIN customers c \
                  ON o.cust = c.id GROUP BY c.seg";

struct World {
    servers: Vec<Arc<RemoteServer>>,
    nicknames: NicknameCatalog,
    network: Arc<Network>,
}

fn world() -> World {
    let orders_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("cust", DataType::Int),
    ]);
    let customers_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("seg", DataType::Str),
    ]);
    let mut orders = Table::new("orders", orders_schema.clone());
    for i in 0..5_000i64 {
        orders
            .insert(Row::new(vec![Value::Int(i), Value::Int(i % 100)]))
            .unwrap();
    }
    let mut customers = Table::new("customers", customers_schema.clone());
    for i in 0..100i64 {
        customers
            .insert(Row::new(vec![
                Value::Int(i),
                Value::from(if i % 2 == 0 { "a" } else { "b" }),
            ]))
            .unwrap();
    }
    let make = |id: &str, t: &Table| {
        let mut c = Catalog::new();
        c.register(t.clone());
        RemoteServer::new(ServerProfile::new(ServerId::new(id)), c)
    };
    let servers = vec![
        make("S1", &orders),
        make("R1", &orders),
        make("S2", &customers),
        make("R2", &customers),
    ];
    let mut network = Network::new();
    for s in &servers {
        network.add_link(s.id().clone(), Link::lan());
    }
    let mut nicknames = NicknameCatalog::new();
    nicknames.define("orders", orders_schema);
    nicknames.define("customers", customers_schema);
    for (nick, srv) in [
        ("orders", "S1"),
        ("orders", "R1"),
        ("customers", "S2"),
        ("customers", "R2"),
    ] {
        nicknames
            .add_source(nick, ServerId::new(srv), nick)
            .unwrap();
    }
    World {
        servers,
        nicknames,
        network: Arc::new(network),
    }
}

fn federation(world: &World, config: QccConfig) -> (Federation, Arc<Qcc>) {
    let qcc = Qcc::new(config);
    let mut fed = Federation::new(
        world.nicknames.clone(),
        SimClock::new(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    for s in &world.servers {
        fed.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(s),
            Arc::clone(&world.network),
        )));
    }
    (fed, qcc)
}

fn server_sets(fed: &Federation, n: usize) -> Vec<BTreeSet<String>> {
    (0..n)
        .map(|_| {
            fed.submit(Q6)
                .expect("Q6 executes")
                .servers
                .iter()
                .map(|s| s.to_string())
                .collect()
        })
        .collect()
}

#[test]
fn without_calibration_one_server_set_takes_all() {
    // A pure cost-based federation (no QCC) sticks to the single cheapest
    // plan forever — the hot-spot behaviour §4 sets out to fix. (With the
    // QCC attached, even without round-robin the calibrator explores:
    // an unobserved replica's estimate stays optimistic, so equal replicas
    // alternate. That drift is calibration, not load balancing.)
    let w = world();
    let mut fed = Federation::new(
        w.nicknames.clone(),
        SimClock::new(),
        Arc::new(load_aware_federation::federation::PassthroughMiddleware::default()),
        FederationConfig::default(),
    );
    for s in &w.servers {
        fed.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(s),
            Arc::clone(&w.network),
        )));
    }
    let sets = server_sets(&fed, 8);
    let distinct: BTreeSet<_> = sets.into_iter().collect();
    assert_eq!(
        distinct.len(),
        1,
        "cheapest-only routing must stick to one server pair, got {distinct:?}"
    );
}

#[test]
fn global_level_rotation_spreads_over_all_replica_pairs() {
    let w = world();
    let (fed, _) = federation(
        &w,
        QccConfig::with_load_balance(LoadBalanceMode::GlobalLevel),
    );
    let sets = server_sets(&fed, 12);
    let distinct: BTreeSet<_> = sets.iter().cloned().collect();
    // All servers equal → all four pairs are within the 20% band.
    assert!(
        distinct.len() >= 3,
        "rotation should cover several server sets, got {distinct:?}"
    );
    // Every server participates.
    let mut participation: HashMap<String, usize> = HashMap::new();
    for set in &sets {
        for s in set {
            *participation.entry(s.clone()).or_insert(0) += 1;
        }
    }
    for id in ["S1", "R1", "S2", "R2"] {
        assert!(
            participation.get(id).copied().unwrap_or(0) > 0,
            "{id} never used: {participation:?}"
        );
    }
}

#[test]
fn fragment_level_rotation_requires_identical_plans() {
    let w = world();
    let (fed, _) = federation(
        &w,
        QccConfig::with_load_balance(LoadBalanceMode::FragmentLevel),
    );
    // Replicas hold identical data and catalogs, so the same plan shape
    // exists on the replica — rotation is allowed and spreads load.
    let sets = server_sets(&fed, 12);
    let distinct: BTreeSet<_> = sets.into_iter().collect();
    assert!(distinct.len() >= 2, "got {distinct:?}");
}

#[test]
fn workload_threshold_gates_rotation() {
    // With an unreachable threshold, the balancer must behave exactly like
    // the disabled mode: identical choice sequence, query by query.
    let w = world();
    let mut gated = QccConfig::with_load_balance(LoadBalanceMode::GlobalLevel);
    gated.workload_threshold = f64::INFINITY; // never heavy enough
    let (fed_gated, _) = federation(&w, gated);
    let (fed_plain, _) = federation(&w, QccConfig::default());
    let gated_sets = server_sets(&fed_gated, 8);
    let plain_sets = server_sets(&fed_plain, 8);
    assert_eq!(
        gated_sets, plain_sets,
        "below-threshold templates must route exactly like the disabled mode"
    );
}

#[test]
fn rotation_preserves_results() {
    let w = world();
    let (fed, _) = federation(
        &w,
        QccConfig::with_load_balance(LoadBalanceMode::GlobalLevel),
    );
    let mut first: Option<Vec<Row>> = None;
    for _ in 0..8 {
        let mut rows = fed.submit(Q6).unwrap().rows;
        rows.sort_by(|a, b| a.values().cmp(b.values()));
        match &first {
            None => first = Some(rows),
            Some(f) => assert_eq!(&rows, f, "rotation changed query results"),
        }
    }
}

#[test]
fn whatif_enumerates_one_winner_per_subset() {
    let w = world();
    let sim = SimulatedFederation::from_servers(w.nicknames.clone(), &w.servers);
    let best = sim.enumerate_by_subsets(Q6).unwrap();
    assert_eq!(best.len(), 4, "2 orders hosts × 2 customers hosts");
    assert_eq!(sim.explain_runs(), 4, "the paper's four explain-mode runs");
    // Exclusion-based what-if: drop S1 → only R1-based pairs remain.
    let without_s1 = sim.enumerate_excluding(Q6, &[ServerId::new("S1")]).unwrap();
    assert!(without_s1
        .iter()
        .all(|c| !c.server_set().contains(&ServerId::new("S1"))));
    assert!(!without_s1.is_empty());
}

#[test]
fn meta_wrapper_records_cover_all_rotated_servers() {
    let w = world();
    let (fed, qcc) = federation(
        &w,
        QccConfig::with_load_balance(LoadBalanceMode::GlobalLevel),
    );
    let _ = server_sets(&fed, 12);
    let runs = qcc.records.runs();
    let servers: BTreeSet<String> = runs.iter().map(|r| r.server.to_string()).collect();
    assert!(
        servers.len() >= 3,
        "runtime records should span rotated servers: {servers:?}"
    );
    // Every record carries the estimate it was costed with.
    assert!(runs.iter().all(|r| r.estimated_total.is_some()));
}
