//! End-to-end mid-query failover through the full QCC stack: a replica
//! crashes while streaming a fragment, the coordinator observes the
//! interrupted stream, bans the source (reliability marks it down), cancels
//! the slot, and re-dispatches the *remainder* — the cursor position, not
//! the whole fragment — to a within-band sibling from the replica catalog.
//! The journal must tell the story in causal order (ban → stall → reroute
//! dispatch → resume → merged completion), the merged result must carry
//! zero duplicate and zero missing rows, and the episode must never feed a
//! truncated response time into calibration.

use load_aware_federation::common::{Event, FieldValue, Row, ServerId, SimTime};
use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::scenario::{scale_server_specs, Scenario, ScenarioConfig};

const FLEET: usize = 12;
const SEED: u64 = 77;

/// A wide scan: the fragment ships thousands of rows, so its stream has
/// several chunks and an interrupt can leave a genuine mid-stream cursor
/// (aggregates collapse to one chunk and always restart at 0).
const SQL: &str = "SELECT a.id, a.grp FROM big_a a WHERE a.sel > 2000";

fn config() -> ScenarioConfig {
    ScenarioConfig {
        large_rows: 3000,
        small_rows: 60,
        seed: SEED,
        threads: 1,
        obs_enabled: true,
        retry_limit: 2,
        server_specs: scale_server_specs(FLEET, SEED),
        replication_factor: 3,
        stall_factor: 4.0,
        ..ScenarioConfig::default()
    }
}

fn build() -> Scenario {
    Scenario::build_with_qcc(QccConfig::default(), config())
}

fn ms_field(e: &Event) -> f64 {
    match e.field("ms") {
        Some(FieldValue::F64(v)) => *v,
        _ => 0.0,
    }
}

fn u64_field(e: &Event, name: &str) -> u64 {
    match e.field(name) {
        Some(FieldValue::U64(v)) => *v,
        other => panic!("{name} field: {other:?}"),
    }
}

/// One completed reroute episode with a strict mid-stream remainder.
struct Episode {
    scenario: Scenario,
    victim: ServerId,
    cut: SimTime,
    expected_rows: Vec<Row>,
    outcome_rows: Vec<Row>,
}

/// Dry-run to learn the victim fragment's timeline and the fault-free
/// result, then sweep the crash instant across the fragment's response
/// interval until the interrupt leaves a genuine mid-stream cursor (at
/// least one chunk already delivered when the source dies). Runs are
/// deterministic, so the disturbed run follows the baseline timeline up
/// to the crash.
fn reroute_episode() -> Episode {
    let baseline = build();
    let expected_rows = baseline.federation.submit(SQL).expect("baseline run").rows;
    let frags = baseline.obs.events_of("fragment");
    let victim_frag = frags
        .iter()
        .max_by(|a, b| ms_field(a).total_cmp(&ms_field(b)))
        .expect("baseline journalled fragment events");
    let victim = ServerId::new(victim_frag.str_field("server").expect("server field"));
    let frag_start = victim_frag.at.as_millis();
    let frag_ms = ms_field(victim_frag);
    assert!(frag_ms > 0.0);

    for frac in [0.55, 0.65, 0.75, 0.85, 0.95, 0.45, 0.35, 0.25] {
        let cut = SimTime::from_millis(frag_start + frac * frag_ms);
        let scenario = build();
        scenario
            .server(victim.as_str())
            .availability()
            .add_outage(cut, SimTime::from_millis(1e12));
        let outcome = scenario.federation.submit(SQL).expect("rerouted run");
        let mid_stream = scenario
            .obs
            .events_of("reroute_dispatch")
            .iter()
            .any(|e| u64_field(e, "cursor") >= 1);
        if mid_stream {
            return Episode {
                scenario,
                victim,
                cut,
                expected_rows,
                outcome_rows: outcome.rows,
            };
        }
    }
    panic!("no crash placement inside the victim fragment produced a mid-stream reroute");
}

#[test]
fn crash_mid_stream_bans_reroutes_remainder_and_merges_exactly() {
    let ep = reroute_episode();
    let obs = &ep.scenario.obs;
    let victim = &ep.victim;

    // Zero duplicates, zero losses: the merged result is exactly the
    // fault-free result.
    assert_eq!(
        ep.outcome_rows, ep.expected_rows,
        "rerouted result must match the fault-free result row-for-row"
    );

    // The journal tells the failover story in causal order.
    let stall = obs
        .events_of("fragment_stall")
        .into_iter()
        .find(|e| e.str_field("server") == Some(victim.as_str()))
        .expect("stall journalled for the victim");
    assert_eq!(stall.str_field("reason"), Some("interrupt"));
    let dispatch = obs
        .events_of("reroute_dispatch")
        .into_iter()
        .next()
        .expect("remainder re-dispatched");
    let resume = obs
        .events_of("fragment_resume")
        .into_iter()
        .next()
        .expect("remainder resumed");
    let complete = obs
        .events_of("query_complete")
        .into_iter()
        .next()
        .expect("query completed");
    let down = obs
        .events_of("server_down")
        .into_iter()
        .find(|e| e.str_field("server") == Some(victim.as_str()))
        .expect("reliability banned the victim");
    assert_eq!(
        down.at, ep.cut,
        "the ban lands at the interrupt instant, not the arrival"
    );
    assert!(stall.at <= dispatch.at, "stall precedes the re-dispatch");
    assert!(dispatch.at <= resume.at, "dispatch precedes the resume");
    assert!(
        resume.at <= complete.at,
        "resume precedes the merged completion"
    );
    assert_eq!(dispatch.str_field("from"), Some(victim.as_str()));
    let rescuer = dispatch.str_field("to").expect("dispatch names a target");
    assert_ne!(rescuer, victim.as_str(), "remainder goes to a sibling");
    let cursor = u64_field(&dispatch, "cursor");
    let total = u64_field(&dispatch, "total_chunks");
    assert!(
        cursor >= 1 && cursor < total,
        "a mid-stream reroute carries a strict remainder ({cursor}/{total})"
    );

    // Stream provenance tiles the chunk range exactly: chunks 0..cursor
    // from the victim, cursor..total from the rescuer, nothing twice.
    let stream = obs
        .events_of("fragment_stream")
        .into_iter()
        .next()
        .expect("resumed fragment journals its provenance");
    let sources = stream.str_field("sources").expect("sources field");
    assert_eq!(
        sources,
        format!("{victim}:0..{cursor}+{rescuer}:{cursor}..{total}"),
        "provenance must tile the chunk range exactly"
    );

    // The reroute absorbed the fault below the retry loop: no global
    // retry, and the victim is marked down for subsequent routing.
    assert_eq!(obs.counter_value("retries_total", &[]), 0);
    assert_eq!(
        obs.counter_value("fragment_reroutes_total", &[("server", rescuer)]),
        1
    );
    let qcc = ep.scenario.qcc.as_ref().expect("qcc routing");
    assert!(qcc.reliability.is_down(victim));
}

#[test]
fn cancelled_partial_delivery_never_feeds_calibration() {
    let ep = reroute_episode();
    let obs = &ep.scenario.obs;
    let qcc = ep.scenario.qcc.as_ref().expect("qcc routing");

    // Run records are the calibration input log (observe_fragment records
    // a run and a calibration sample in the same deferred effect), so the
    // truncated episode is pinned here: the victim contributes nothing at
    // or after the interrupt instant.
    let runs = qcc.records.runs();
    assert!(
        runs.iter().all(|r| r.server != ep.victim || r.at < ep.cut),
        "an interrupted fragment must not record a (truncated) run sample"
    );
    // Full completions are acknowledged exactly once each; the rescued
    // remainder is journalled as a resumed fragment but is *not* a
    // calibration sample (its response time covers only the tail).
    let fragment_events = obs.events_of("fragment").len();
    let resumes = obs.events_of("fragment_resume").len();
    assert!(resumes >= 1, "the episode must actually reroute");
    assert_eq!(
        runs.len(),
        fragment_events - resumes,
        "calibration samples = full fragment completions, excluding resumed remainders"
    );
    // Every surviving calibration input is a finite, positive,
    // whole-fragment observation.
    for r in &runs {
        assert!(
            r.observed_ms > 0.0 && r.observed_ms.is_finite(),
            "calibration samples stay finite and positive"
        );
    }
}
