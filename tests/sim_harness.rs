//! End-to-end checks of the qcc-sim harness itself.
//!
//! 1. The checked-in regression corpus replays green (the same gate ci.sh
//!    runs through the binary).
//! 2. A deliberately injected conservation bug is caught by the oracles,
//!    shrinks to a minimal scenario, and its replay line round-trips —
//!    i.e. the harness can actually fail, and a failure is actionable.

use load_aware_federation::sim::{check_config, check_seed, corpus, parse, shrink, BugSwitches};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(corpus::DEFAULT_DIR)
}

#[test]
fn regression_corpus_replays_green() {
    let entries = corpus::load(&corpus_dir()).expect("corpus must load");
    assert!(
        entries.len() >= 4,
        "corpus unexpectedly small: {} entries",
        entries.len()
    );
    for (path, config) in entries {
        let report = check_config(&config, &BugSwitches::none());
        assert!(
            report.ok(),
            "{}: {:?} ({})",
            path.display(),
            report.violations,
            report.summary
        );
    }
}

#[test]
fn injected_conservation_bug_is_caught_shrunk_and_replayable() {
    let bug = BugSwitches {
        drop_completion: true,
    };
    let report = check_seed(9, &bug);
    assert!(
        report.violations.iter().any(|v| v.oracle == "conservation"),
        "the conservation oracle must catch the injected drop: {:?}",
        report.violations
    );

    let shrunk = shrink(&report.config, &bug, 100);
    let line = shrunk.config.render();
    let reparsed = parse(&line).expect("replay line must parse");
    assert_eq!(reparsed, shrunk.config, "replay line round-trips exactly");
    let replayed = check_config(&reparsed, &bug);
    assert!(
        replayed
            .violations
            .iter()
            .any(|v| v.oracle == "conservation"),
        "the shrunk replay must still fail the same oracle"
    );
    // And with the bug switched off the same scenario is clean — the
    // failure is the injected bug, not the scenario.
    assert!(check_config(&reparsed, &BugSwitches::none()).ok());
}
