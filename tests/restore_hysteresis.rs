//! Restore hysteresis: a flapping server (down → briefly up → down again
//! between two probes) must not oscillate its ban state, emit spurious
//! restore events, or leak repeated plan-cache invalidations.
//!
//! The availability daemon is the *only* writer of restore state during a
//! run, so the believed-down timeline moves exactly at probe points: a
//! recovery the daemon never observed must leave no trace in the journal.
//! This pins the exact journal kind sequence for a down → flap → restore
//! episode, plus the transition counters and the invalidate-once contract
//! of `Qcc::refresh_admission`.

use load_aware_federation::admission::{AdmissionConfig, AdmissionController};
use load_aware_federation::common::{
    Column, DataType, Row, Schema, ServerId, SimClock, SimTime, Value,
};
use load_aware_federation::netsim::{Link, Network};
use load_aware_federation::qcc::{AvailabilityDaemon, Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::{RelationalWrapper, Wrapper};
use std::sync::Arc;

#[test]
fn flapping_server_does_not_oscillate_ban_state() {
    let mut t = Table::new("t", Schema::new(vec![Column::new("a", DataType::Int)]));
    for i in 0..50i64 {
        t.insert(Row::new(vec![Value::Int(i)])).unwrap();
    }
    let mut c = Catalog::new();
    c.register(t);
    let server = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), c);
    let mut net = Network::new();
    net.add_link(ServerId::new("S1"), Link::lan());
    let wrapper: Arc<dyn Wrapper> =
        Arc::new(RelationalWrapper::new(Arc::clone(&server), Arc::new(net)));

    let qcc = Qcc::new(QccConfig::default());
    let clock = SimClock::new();
    let daemon = AvailabilityDaemon::new(Arc::clone(&qcc), vec![wrapper], clock.clone());
    let s1 = ServerId::new("S1");
    let servers = [s1.clone()];
    // Obs stays off on the admission side so the journal under test holds
    // daemon/reliability events only.
    let admission = AdmissionController::new(AdmissionConfig::default());
    qcc.plan_cache.put(&s1, "SELECT 1", Vec::new());

    // The flap: down over [10, 60), up over [60, 90), down over [90, 200).
    // With the fast probe bound at 100 ms the daemon sees t=15 (down) and
    // then t=115 (down again) — the 30 ms up-window in between is invisible
    // and must produce no restore.
    let (lo, _) = qcc.config.probe_interval_bounds_ms;
    assert_eq!(lo, 100.0, "timeline below assumes the default fast bound");
    server
        .availability()
        .add_outage(SimTime::from_millis(10.0), SimTime::from_millis(60.0));
    server
        .availability()
        .add_outage(SimTime::from_millis(90.0), SimTime::from_millis(200.0));

    // t=0: healthy baseline probe.
    daemon.probe_all();
    assert!(!qcc.reliability.is_down(&s1));
    qcc.refresh_admission(&admission, &servers, clock.now());
    let invalidations = |qcc: &Qcc| {
        qcc.obs
            .counter_value("plan_cache_invalidations_total", &[("server", "S1")])
    };
    assert_eq!(invalidations(&qcc), 0);

    // t=15: probe inside the first outage → banned, plans invalidated once.
    clock.advance_to(SimTime::from_millis(15.0));
    daemon.probe_all();
    assert!(qcc.reliability.is_down(&s1));
    qcc.refresh_admission(&admission, &servers, clock.now());
    assert_eq!(admission.capacity(&s1), 0, "down server holds zero tokens");
    assert!(qcc.plan_cache.get(&s1, "SELECT 1").is_none());
    assert_eq!(invalidations(&qcc), 1);
    // Re-refreshing while down must not invalidate again.
    qcc.refresh_admission(&admission, &servers, clock.now());
    qcc.refresh_admission(&admission, &servers, clock.now());
    assert_eq!(
        invalidations(&qcc),
        1,
        "invalidate exactly once per transition"
    );

    // t=70: the server is transiently up, but the down-server re-probe is
    // not due until t=115 — the daemon must not probe, so the flap stays
    // invisible and the ban state cannot oscillate.
    clock.advance_to(SimTime::from_millis(70.0));
    assert!(daemon.run_due_probes().is_empty(), "no probe due mid-flap");
    assert!(
        qcc.reliability.is_down(&s1),
        "ban state holds through the flap"
    );
    qcc.refresh_admission(&admission, &servers, clock.now());
    assert_eq!(invalidations(&qcc), 1);

    // t=115: fast-bound re-probe lands inside the second outage → still
    // down; no second down transition, no restore.
    clock.advance_to(SimTime::from_millis(115.0));
    assert_eq!(daemon.run_due_probes(), vec![s1.clone()]);
    assert!(qcc.reliability.is_down(&s1));
    qcc.refresh_admission(&admission, &servers, clock.now());
    assert_eq!(invalidations(&qcc), 1);

    // t=215: probe after recovery → exactly one restore; tokens return
    // without another invalidation.
    clock.advance_to(SimTime::from_millis(215.0));
    assert_eq!(daemon.run_due_probes(), vec![s1.clone()]);
    assert!(!qcc.reliability.is_down(&s1));
    qcc.refresh_admission(&admission, &servers, clock.now());
    assert!(
        admission.capacity(&s1) > 0,
        "recovered server earns tokens back"
    );
    assert_eq!(invalidations(&qcc), 1);

    // Transition counters balance: one down, one recovery, despite the
    // extra (unobserved) up/down flap in the availability schedule.
    assert_eq!(
        qcc.obs
            .counter_value("server_down_total", &[("server", "S1")]),
        1
    );
    assert_eq!(
        qcc.obs
            .counter_value("server_recovered_total", &[("server", "S1")]),
        1
    );

    // The exact journal sequence for the whole episode. Kinds only: field
    // values (ping ms, adaptive intervals) are covered by the daemon's own
    // unit tests.
    let kinds: Vec<&'static str> = qcc.obs.journal().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            "calibration_seed", // t=0 healthy probe seeds a factor
            "probe",            // t=0 probe record
            "server_down",      // t=15 down transition
            "probe",            // t=15 probe record
            "probe",            // t=115 still down: probe only, no transition
            "calibration_seed", // t=215 healthy probe seeds again
            "server_restored",  // t=215 the one and only restore
            "probe",            // t=215 probe record
        ],
        "unexpected journal shape: {kinds:?}"
    );
}
