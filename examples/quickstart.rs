//! Quickstart: build a small federation with a replicated table, attach
//! the Query Cost Calibrator, and watch routing adapt when a server gets
//! loaded.
//!
//! Run with: `cargo run --release --example quickstart`

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: an `events` table, replicated on two servers.
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("kind", DataType::Str),
        Column::new("amount", DataType::Float),
    ]);
    let mut events = Table::new("events", schema.clone());
    for i in 0..20_000i64 {
        events.insert(Row::new(vec![
            Value::Int(i),
            Value::from(if i % 3 == 0 { "click" } else { "view" }),
            Value::Float((i % 97) as f64),
        ]))?;
    }

    // 2. Two remote servers: `fast` has twice the CPU of `slow`.
    let make_server = |name: &str, speed: f64| {
        let mut catalog = Catalog::new();
        catalog.register(events.clone());
        let mut profile = ServerProfile::new(ServerId::new(name));
        profile.speed = speed;
        RemoteServer::new(profile, catalog)
    };
    let fast = make_server("fast", 2.0);
    let slow = make_server("slow", 1.0);

    // 3. Network links from the integrator to each server.
    let mut network = Network::new();
    network.add_link(
        ServerId::new("fast"),
        Link::new(5.0, 20_000.0, LoadProfile::Constant(0.0)),
    );
    network.add_link(
        ServerId::new("slow"),
        Link::new(5.0, 20_000.0, LoadProfile::Constant(0.0)),
    );
    let network = Arc::new(network);

    // 4. Nicknames: `events` resolves to either replica.
    let mut nicknames = NicknameCatalog::new();
    nicknames.define("events", schema);
    nicknames.add_source("events", ServerId::new("fast"), "events")?;
    nicknames.add_source("events", ServerId::new("slow"), "events")?;

    // 5. The QCC middleware plus the federation.
    let qcc = Qcc::new(QccConfig::default());
    let clock = SimClock::new();
    let mut federation = Federation::new(
        nicknames,
        clock.clone(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    federation.add_wrapper(Arc::new(RelationalWrapper::new(
        Arc::clone(&fast),
        Arc::clone(&network),
    )));
    federation.add_wrapper(Arc::new(RelationalWrapper::new(Arc::clone(&slow), network)));

    let sql = "SELECT kind, COUNT(*) AS n, AVG(amount) AS avg_amount \
               FROM events WHERE amount > 10.0 GROUP BY kind ORDER BY kind";

    // 6a. EXPLAIN: see the decomposition and the costed candidates before
    // anything executes.
    let (decomposed, candidates) = federation.explain_global(sql)?;
    println!(
        "{}",
        load_aware_federation::federation::render_explain(&decomposed, &candidates)
    );

    // 6b. Unloaded: the fast server wins on raw cost.
    println!("--- unloaded ---");
    for _ in 0..3 {
        let out = federation.submit(sql)?;
        println!(
            "routed to {:?}, response {:.2} ms, {} rows",
            out.servers
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            out.response_ms,
            out.rows.len()
        );
        for row in &out.rows {
            println!("   {row}");
        }
    }

    // 7. Load the fast server: its observed times inflate, the calibration
    // factor rises, and the QCC re-routes to the slow-but-idle replica.
    println!("--- fast server now heavily loaded ---");
    fast.load().set_background(LoadProfile::Constant(0.9));
    for i in 0..6 {
        let out = federation.submit(sql)?;
        let factor = qcc.calibration.server_factor(&ServerId::new("fast"));
        println!(
            "query {i}: routed to {:?}, response {:.2} ms (fast's calibration factor: {factor:.2})",
            out.servers
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            out.response_ms,
        );
    }

    // 8. The patroller kept the full log.
    println!(
        "--- patroller logged {} queries, virtual time is {} ---",
        federation.patroller().len(),
        clock.now()
    );
    Ok(())
}
