//! Drive the federation past saturation with an open-loop Poisson arrival
//! process, with admission control attached, and read the shed/deadline
//! story back from the qcc-obs journal.
//!
//! ```sh
//! cargo run --release --example saturation_shedding
//! ```

use load_aware_federation::admission::{AdmissionConfig, AdmissionController};
use load_aware_federation::qcc::QccConfig;
use load_aware_federation::workload::{
    poisson_arrivals, run_open_loop, AdmissionMode, Scenario, ScenarioConfig,
};
use std::sync::Arc;

fn main() {
    let mut scenario = Scenario::build_with_qcc(QccConfig::default(), ScenarioConfig::tiny());
    let admission = Arc::new(AdmissionController::with_obs(
        AdmissionConfig {
            queue_deadline_ms: 40.0,
            exec_deadline_ms: 120.0,
            base_tokens: 4,
            // Deep queue: bursts wait under EDF; shed-on-dispatch drops
            // only work that can no longer meet its deadline.
            max_queue_depth: 1024,
            ..AdmissionConfig::default()
        },
        scenario.obs.clone(),
    ));
    scenario.federation.set_admission(Arc::clone(&admission));

    // ~2x the tiny scenario's service capacity, sustained long enough
    // that the backlog outgrows the deadline budget: the queue holds it
    // under EDF, viable work drains, and provably-late work sheds at
    // dispatch (a short burst would drain entirely, shedding nothing).
    let arrivals = poisson_arrivals(6.0, 1200, 0xfeed);
    let report = run_open_loop(&scenario, AdmissionMode::Admitted(&admission), &arrivals);

    println!("== saturation run ==");
    println!("arrivals:    {}", arrivals.len());
    println!("completed:   {}", report.completed.len());
    println!("shed:        {}", report.shed);
    println!("failed:      {}", report.failed);
    println!("rounds:      {}", report.rounds);
    println!("p50:         {:.3} ms", report.response_percentile(50.0));
    println!("p99:         {:.3} ms", report.response_percentile(99.0));
    println!(
        "goodput:     {} queries within {} ms of arrival",
        report.goodput(160.0),
        160.0
    );

    println!("\n== journal excerpt (shed events) ==");
    for event in scenario.obs.events_of("shed").iter().take(5) {
        println!("{} {:?}", event.at, event.fields);
    }
    println!("\n== metrics ==");
    print!("{}", scenario.obs.metrics_snapshot());
}
