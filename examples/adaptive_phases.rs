//! The paper's headline experiment in miniature: run the four query types
//! through the eight load phases of Table 1 and compare fixed
//! registration-time routing against QCC's adaptive routing.
//!
//! This drives the same machinery as the `fig10`/`table2` bench harnesses,
//! at a size that finishes in seconds.
//!
//! Run with: `cargo run --release --example adaptive_phases`

use load_aware_federation::workload::{
    run_phases, PhaseSchedule, Routing, ScenarioConfig, ALL_QUERY_TYPES,
};

fn main() {
    let config = ScenarioConfig {
        large_rows: 10_000,
        small_rows: 500,
        ..ScenarioConfig::default()
    };
    let schedule = PhaseSchedule::paper_table1();
    println!(
        "Running {} phases × 4 query types × 4 instances, two routings...\n",
        schedule.phases.len()
    );

    let fixed = run_phases(Routing::Fixed1, &config, &schedule, 4, 2);
    let qcc = run_phases(Routing::Qcc, &config, &schedule, 4, 2);

    println!(
        "{:<8} {:>12} {:>12} {:>8}   dynamic assignment",
        "phase", "fixed ms", "qcc ms", "gain"
    );
    for (f, q) in fixed.phases.iter().zip(&qcc.phases) {
        let gain = 1.0 - q.avg_ms / f.avg_ms;
        let assignment: Vec<String> = ALL_QUERY_TYPES
            .iter()
            .map(|qt| format!("{qt}→{}", q.per_type_server[qt.index()]))
            .collect();
        println!(
            "Phase{:<3} {:>12.1} {:>12.1} {:>7.1}%   {}",
            f.number,
            f.avg_ms,
            q.avg_ms,
            gain * 100.0,
            assignment.join(" ")
        );
    }
    println!(
        "\nmean gain of QCC over fixed assignment: {:.1}%",
        qcc.mean_gain_over(&fixed) * 100.0
    );
}
