//! Availability-aware routing (§3.3): a remote source goes down
//! mid-workload; the QCC detects it (error records + daemon probes), pins
//! its cost to infinity so no fragments route there, and re-admits it once
//! probes see it back up. The whole story is replayed from the qcc-obs
//! journal and metrics registry at the end (DESIGN.md §9).
//!
//! Run with: `cargo run --release --example failover_availability`

use load_aware_federation::common::{
    Column, DataType, Obs, Row, Schema, ServerId, SimDuration, SimTime, Value,
};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{AvailabilityDaemon, Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::{RelationalWrapper, Wrapper};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("v", DataType::Int),
    ]);
    let mut metrics = Table::new("metrics", schema.clone());
    for i in 0..10_000i64 {
        metrics.insert(Row::new(vec![Value::Int(i), Value::Int(i % 50)]))?;
    }

    // `primary` is fast; `backup` is slower but steady.
    let mk = |name: &str, speed: f64| {
        let mut c = Catalog::new();
        c.register(metrics.clone());
        let mut p = ServerProfile::new(ServerId::new(name));
        p.speed = speed;
        RemoteServer::new(p, c)
    };
    let primary = mk("primary", 2.0);
    let backup = mk("backup", 1.0);

    let mut network = Network::new();
    for n in ["primary", "backup"] {
        network.add_link(
            ServerId::new(n),
            Link::new(2.0, 50_000.0, LoadProfile::Constant(0.0)),
        );
    }
    let network = Arc::new(network);

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("metrics", schema);
    nicknames.add_source("metrics", ServerId::new("primary"), "metrics")?;
    nicknames.add_source("metrics", ServerId::new("backup"), "metrics")?;

    let obs = Obs::new();
    let qcc = Qcc::with_obs(
        QccConfig {
            probe_interval_ms: 500.0,
            ..QccConfig::default()
        },
        obs.clone(),
    );
    let clock = SimClock::new();
    let mut federation = Federation::new(
        nicknames,
        clock.clone(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    federation.set_obs(obs.clone());
    let wrappers: Vec<Arc<dyn Wrapper>> = vec![
        Arc::new(RelationalWrapper::new(
            Arc::clone(&primary),
            Arc::clone(&network),
        )),
        Arc::new(RelationalWrapper::new(Arc::clone(&backup), network)),
    ];
    for w in &wrappers {
        federation.add_wrapper(Arc::clone(w));
    }
    let daemon = AvailabilityDaemon::new(Arc::clone(&qcc), wrappers, clock.clone());

    // Schedule an outage of the primary on the virtual timeline.
    let outage_start = SimTime::from_millis(400.0);
    let outage_end = SimTime::from_millis(2_500.0);
    primary.availability().add_outage(outage_start, outage_end);
    println!(
        "primary will be down during [{outage_start}, t={:.0}ms)",
        outage_end.as_millis()
    );

    let sql = "SELECT v, COUNT(*) AS n FROM metrics WHERE v < 10 GROUP BY v";
    for step in 0..14 {
        // The daemon probes on its own cadence as virtual time advances.
        daemon.run_due_probes();
        match federation.submit(sql) {
            Ok(out) => {
                let down = qcc.reliability.is_down(&ServerId::new("primary"));
                let reliability = qcc.reliability.factor(&ServerId::new("primary"));
                println!(
                    "[{:8}] query {step:2} → {:?} in {:.2} ms (primary believed {}, reliability factor {:.2})",
                    clock.now().to_string(),
                    out.servers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
                    out.response_ms,
                    if down { "DOWN" } else { "up" },
                    reliability,
                );
            }
            Err(e) => println!("[{:8}] query {step:2} failed: {e}", clock.now().to_string()),
        }
        // Idle gap between queries so the timeline crosses the outage.
        clock.advance(SimDuration::from_millis(250.0));
    }

    // Note the tail of the run: even after the primary is back up, the
    // QCC keeps routing to the backup for a while — the reliability
    // factor (§3.3) penalizes the recently-flaky server until its error
    // window washes out: "access not only high performance but also
    // highly available remote servers."
    println!("\nError records the meta-wrapper captured:");
    for e in qcc.records.errors() {
        println!("   [{}] {}: {}", e.at, e.server, e.message);
    }

    // The same story, machine-readable: every ban, reroute, probe and
    // recovery landed in the qcc-obs journal as it happened, and the
    // registry kept the tallies.
    println!("\nqcc-obs journal (JSONL, virtual timestamps):");
    for line in obs.journal_snapshot().lines() {
        println!("   {line}");
    }
    println!("\nqcc-obs metrics snapshot:");
    for line in obs.metrics_snapshot().lines() {
        println!("   {line}");
    }
    Ok(())
}
