//! The §4 load distribution scenario (Figures 7–8): four remote servers —
//! S1 and S2 plus replicas R1 and R2 — and a federated join `Q6` across
//! the two nicknames.
//!
//! The example shows all three mechanisms of §4.2:
//! 1. the simulated federated system enumerating every alternative global
//!    plan (the nine `Q6_p1..Q6_p9` of Figure 7) in only four explain-mode
//!    runs (one per server subset);
//! 2. dominance elimination (same server set → keep the cheapest);
//! 3. round-robin rotation over the surviving near-equal plans, spreading
//!    the workload across all four servers.
//!
//! Run with: `cargo run --release --example replica_load_balance`

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{LoadBalanceMode, Qcc, QccConfig, SimulatedFederation};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tables: `orders` on S1 (replica R1), `customers` on S2 (replica R2).
    let orders_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("cust_id", DataType::Int),
        Column::new("total", DataType::Float),
    ]);
    let customers_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("segment", DataType::Str),
    ]);
    let mut orders = Table::new("orders", orders_schema.clone());
    for i in 0..40_000i64 {
        orders.insert(Row::new(vec![
            Value::Int(i),
            Value::Int(i % 500),
            Value::Float((i % 90) as f64),
        ]))?;
    }
    let mut customers = Table::new("customers", customers_schema.clone());
    for i in 0..500i64 {
        customers.insert(Row::new(vec![
            Value::Int(i),
            Value::from(if i % 4 == 0 { "enterprise" } else { "retail" }),
        ]))?;
    }

    let make = |id: &str, table: &Table| {
        let mut c = Catalog::new();
        c.register(table.clone());
        RemoteServer::new(ServerProfile::new(ServerId::new(id)), c)
    };
    let servers = vec![
        make("S1", &orders),
        make("R1", &orders),
        make("S2", &customers),
        make("R2", &customers),
    ];

    let mut network = Network::new();
    for s in &servers {
        network.add_link(
            s.id().clone(),
            Link::new(3.0, 40_000.0, LoadProfile::Constant(0.0)),
        );
    }
    let network = Arc::new(network);

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("orders", orders_schema);
    nicknames.define("customers", customers_schema);
    nicknames.add_source("orders", ServerId::new("S1"), "orders")?;
    nicknames.add_source("orders", ServerId::new("R1"), "orders")?;
    nicknames.add_source("customers", ServerId::new("S2"), "customers")?;
    nicknames.add_source("customers", ServerId::new("R2"), "customers")?;

    let q6 = "SELECT c.segment, COUNT(*) AS n, SUM(o.total) AS revenue \
              FROM orders o JOIN customers c ON o.cust_id = c.id \
              WHERE o.total > 30.0 GROUP BY c.segment";

    // --- 1. What-if enumeration via the simulated federated system ---
    let sim = SimulatedFederation::from_servers(nicknames.clone(), &servers);
    let per_subset = sim.enumerate_by_subsets(q6)?;
    println!("Q6 alternative global plans (one winner per server subset,");
    println!(
        "derived from {} explain-mode runs over virtual tables):",
        sim.explain_runs()
    );
    for (set, plan) in &per_subset {
        let names: Vec<String> = set.iter().map(|s| s.to_string()).collect();
        println!(
            "   {{{}}} → estimated cost {:.2}",
            names.join(", "),
            plan.total_cost()
        );
    }

    // --- 2 & 3. Production federation with global-level round robin ---
    let qcc = Qcc::new(QccConfig::with_load_balance(LoadBalanceMode::GlobalLevel));
    let clock = SimClock::new();
    let mut federation = Federation::new(
        nicknames,
        clock,
        qcc.middleware(),
        FederationConfig::default(),
    );
    for s in &servers {
        federation.add_wrapper(Arc::new(RelationalWrapper::new(
            Arc::clone(s),
            Arc::clone(&network),
        )));
    }

    println!("\nSubmitting 12 instances of Q6 with global-level load distribution:");
    let mut counts: HashMap<String, usize> = HashMap::new();
    for i in 0..12 {
        let out = federation.submit(q6)?;
        let set: Vec<String> = out.servers.iter().map(|s| s.to_string()).collect();
        println!(
            "   Q6 #{i:2}: servers {{{}}}, {:.2} ms",
            set.join(", "),
            out.response_ms
        );
        for s in set {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    println!("\nPer-server share of fragment executions:");
    let mut names: Vec<&String> = counts.keys().collect();
    names.sort();
    for name in names {
        println!("   {name}: {} of 12 queries", counts[name]);
    }
    println!("\n(Disable rotation and the cheapest pair would serve every query,");
    println!(" overloading two servers while their replicas idle — §4's hot spot.)");
    Ok(())
}
