//! Data placement advice — the paper's stated future work (§7): use the
//! QCC's what-if machinery to decide *where new replicas should go*.
//!
//! A hot `facts` table lives only on a slow server; the dimension table
//! is already replicated onto a fast one. The advisor simulates adding a
//! `facts` replica to each non-hosting server (virtual tables — no data
//! moves) and prices the observed workload against each hypothetical
//! layout.
//!
//! Run with: `cargo run --release --example placement_advisor`

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{PlacementAdvisor, Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let facts_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("dim_id", DataType::Int),
        Column::new("qty", DataType::Int),
    ]);
    let dims_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("name", DataType::Str),
    ]);
    let mut facts = Table::new("facts", facts_schema.clone());
    for i in 0..30_000i64 {
        facts.insert(Row::new(vec![
            Value::Int(i),
            Value::Int(i % 40),
            Value::Int(i % 9),
        ]))?;
    }
    let mut dims = Table::new("dims", dims_schema.clone());
    for i in 0..40i64 {
        dims.insert(Row::new(vec![Value::Int(i), Value::Str(format!("dim{i}"))]))?;
    }

    // old_db is slow and hosts everything; new_db is 3× faster but only
    // has the dimension table so far.
    let mut cat_old = Catalog::new();
    cat_old.register(facts);
    cat_old.register(dims.clone());
    let mut p_old = ServerProfile::new(ServerId::new("old_db"));
    p_old.speed = 1.0;
    let old_db = RemoteServer::new(p_old, cat_old);

    let mut cat_new = Catalog::new();
    cat_new.register(dims);
    let mut p_new = ServerProfile::new(ServerId::new("new_db"));
    p_new.speed = 3.0;
    let new_db = RemoteServer::new(p_new, cat_new);

    let mut network = Network::new();
    for n in ["old_db", "new_db"] {
        network.add_link(
            ServerId::new(n),
            Link::new(2.0, 40_000.0, LoadProfile::Constant(0.0)),
        );
    }
    let network = Arc::new(network);

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("facts", facts_schema);
    nicknames.define("dims", dims_schema);
    nicknames.add_source("facts", ServerId::new("old_db"), "facts")?;
    nicknames.add_source("dims", ServerId::new("old_db"), "dims")?;
    nicknames.add_source("dims", ServerId::new("new_db"), "dims")?;

    let qcc = Qcc::new(QccConfig::default());
    let mut federation = Federation::new(
        nicknames.clone(),
        SimClock::new(),
        qcc.middleware(),
        FederationConfig::default(),
    );
    federation.add_wrapper(Arc::new(RelationalWrapper::new(
        Arc::clone(&old_db),
        Arc::clone(&network),
    )));
    federation.add_wrapper(Arc::new(RelationalWrapper::new(
        Arc::clone(&new_db),
        network,
    )));

    // Run the workload for a while: the join is stuck on old_db (the only
    // server hosting both tables).
    let hot_query = "SELECT d.name, SUM(f.qty) AS total FROM facts f \
                     JOIN dims d ON f.dim_id = d.id GROUP BY d.name ORDER BY total DESC LIMIT 5";
    let mut total_ms = 0.0;
    for _ in 0..10 {
        let out = federation.submit(hot_query)?;
        total_ms += out.response_ms;
        assert!(out.servers.contains(&ServerId::new("old_db")));
    }
    println!("current layout: 10 hot-query runs on old_db, total {total_ms:.1} ms\n");

    // Ask the advisor what to do, weighting the hot query by its observed
    // frequency (here: what the patroller logged).
    let advisor = PlacementAdvisor::new(&qcc, nicknames, vec![old_db, new_db]);
    let recs = advisor.recommend(&[(hot_query.to_string(), 10)])?;
    if recs.is_empty() {
        println!("advisor: current placement is already good");
    } else {
        println!("advisor recommendations (what-if over virtual catalogs):");
        for r in &recs {
            println!(
                "   replicate '{}' onto {}: workload cost {:.1} → {:.1} ({:.0}% saving)",
                r.nickname,
                r.target,
                r.current_workload_cost,
                r.projected_workload_cost,
                r.saving() * 100.0
            );
        }
    }
    Ok(())
}
