//! The paper's §3 worked example, end to end (Figures 3–6).
//!
//! A federated query `Q1` integrates two sources, `S1` and `S2`. At
//! compile time, the wrappers return plans with estimated costs; at run
//! time, the meta-wrapper observes the real response times; the QCC
//! derives per-server calibration factors as the ratio of observed to
//! estimated cost; and a *new* query `Q5` — containing a fragment never
//! seen before — is costed with the calibrated estimate instead of the
//! raw one, exactly as Figure 5 shows.
//!
//! Run with: `cargo run --release --example calibration_walkthrough`

use load_aware_federation::common::{Column, DataType, Row, Schema, ServerId, Value};
use load_aware_federation::federation::{Federation, FederationConfig, NicknameCatalog};
use load_aware_federation::netsim::{Link, LoadProfile, Network, SimClock};
use load_aware_federation::qcc::{Qcc, QccConfig};
use load_aware_federation::remote::{RemoteServer, ServerProfile};
use load_aware_federation::storage::{Catalog, Table};
use load_aware_federation::wrapper::RelationalWrapper;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // S1 hosts `inventory`, S2 hosts `suppliers` — both also host a
    // `parts` table Q5 will touch for the first time later.
    let inventory_schema = Schema::new(vec![
        Column::new("part_id", DataType::Int),
        Column::new("warehouse", DataType::Int),
        Column::new("qty", DataType::Int),
    ]);
    let suppliers_schema = Schema::new(vec![
        Column::new("part_id", DataType::Int),
        Column::new("name", DataType::Str),
    ]);
    let parts_schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("weight", DataType::Float),
    ]);

    let mut inventory = Table::new("inventory", inventory_schema.clone());
    for i in 0..30_000i64 {
        inventory.insert(Row::new(vec![
            Value::Int(i % 5_000),
            Value::Int(i % 7),
            Value::Int(i % 100),
        ]))?;
    }
    let mut suppliers = Table::new("suppliers", suppliers_schema.clone());
    for i in 0..5_000i64 {
        suppliers.insert(Row::new(vec![
            Value::Int(i),
            Value::Str(format!("supplier_{i}")),
        ]))?;
    }
    let mut parts = Table::new("parts", parts_schema.clone());
    for i in 0..5_000i64 {
        parts.insert(Row::new(vec![Value::Int(i), Value::Float((i % 50) as f64)]))?;
    }

    let mut cat1 = Catalog::new();
    cat1.register(inventory);
    cat1.register(parts.clone());
    let mut cat2 = Catalog::new();
    cat2.register(suppliers);
    cat2.register(parts);

    let s1 = RemoteServer::new(ServerProfile::new(ServerId::new("S1")), cat1);
    let s2 = RemoteServer::new(ServerProfile::new(ServerId::new("S2")), cat2);

    let mut network = Network::new();
    for id in ["S1", "S2"] {
        network.add_link(
            ServerId::new(id),
            Link::new(3.0, 30_000.0, LoadProfile::Constant(0.0)),
        );
    }
    let network = Arc::new(network);

    let mut nicknames = NicknameCatalog::new();
    nicknames.define("inventory", inventory_schema);
    nicknames.define("suppliers", suppliers_schema);
    nicknames.define("parts", parts_schema);
    nicknames.add_source("inventory", ServerId::new("S1"), "inventory")?;
    nicknames.add_source("suppliers", ServerId::new("S2"), "suppliers")?;
    nicknames.add_source("parts", ServerId::new("S2"), "parts")?;

    let qcc = Qcc::new(QccConfig::default());
    let clock = SimClock::new();
    let mut federation = Federation::new(
        nicknames,
        clock,
        qcc.middleware(),
        FederationConfig::default(),
    );
    federation.add_wrapper(Arc::new(RelationalWrapper::new(
        Arc::clone(&s1),
        Arc::clone(&network),
    )));
    federation.add_wrapper(Arc::new(RelationalWrapper::new(Arc::clone(&s2), network)));

    // Both sources are quietly under load the optimizer knows nothing
    // about — the gap the calibrator will discover.
    s1.load().set_background(LoadProfile::Constant(0.60));
    s2.load().set_background(LoadProfile::Constant(0.45));

    // ---- Compile + run Q1 (Figures 3 and 4) ----
    let q1 = "SELECT s.name, SUM(i.qty) AS total \
              FROM inventory i JOIN suppliers s ON i.part_id = s.part_id \
              WHERE i.warehouse = 3 GROUP BY s.name ORDER BY total DESC LIMIT 5";
    println!("Q1: {q1}\n");
    let out = federation.submit(q1)?;
    println!("Q1 executed on {:?}; fragment response times:", out.servers);
    for (server, ms) in &out.fragment_times {
        println!("   {server}: observed {ms:.2} ms");
    }

    // The meta-wrapper recorded estimated vs observed per fragment; the
    // QCC turned them into per-server calibration factors (Figure 4's
    // 8/5 = 1.6 and 7/5 = 1.4 computation, with our numbers).
    println!("\nMeta-wrapper runtime records:");
    for r in qcc.records.runs() {
        println!(
            "   {} @ {}: estimated {:.2}, observed {:.2} → ratio {:.2}",
            r.fragment,
            r.server,
            r.estimated_total.unwrap_or(f64::NAN),
            r.observed_ms,
            r.observed_ms / r.estimated_total.unwrap_or(f64::NAN)
        );
    }
    for id in ["S1", "S2"] {
        println!(
            "QCC calibration factor for {id}: {:.3}",
            qcc.calibration.server_factor(&ServerId::new(id))
        );
    }

    // ---- Q5: a fragment never seen before (Figure 5) ----
    // `parts` lives on S2; its fragment has no runtime history, so the
    // meta-wrapper returns the wrapper's estimate multiplied by S2's
    // *server* calibration factor — "instead of returning this estimated
    // cost directly, MW calibrates the cost".
    let q5 = "SELECT i.warehouse, COUNT(*) AS n \
              FROM inventory i JOIN parts p ON i.part_id = p.id \
              WHERE p.weight > 25.0 GROUP BY i.warehouse";
    println!("\nQ5 (new fragment on S2): {q5}\n");
    let (_, candidates) = federation.explain_global(q5)?;
    for cand in candidates.iter().take(3) {
        for f in &cand.fragments {
            let raw = f.plan.cost.map(|c| c.total()).unwrap_or(f64::NAN);
            println!(
                "   candidate fragment @ {}: raw estimate {:.2} → calibrated {:.2} ({}x)",
                f.plan.server,
                raw,
                f.effective_cost.total(),
                f.effective_cost.total() / raw
            );
        }
    }
    let out = federation.submit(q5)?;
    println!(
        "\nQ5 executed on {:?} in {:.2} ms ({} rows)",
        out.servers,
        out.response_ms,
        out.rows.len()
    );
    Ok(())
}
