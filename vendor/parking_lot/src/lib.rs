//! In-tree shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no registry access, so instead of the real
//! crate we vendor a thin wrapper over `std::sync::Mutex` with the same
//! non-poisoning API: `lock()` returns the guard directly rather than a
//! `Result`. A poisoned std mutex is recovered (the inner value is taken
//! as-is) because every critical section in this workspace maintains its
//! invariants even on unwind — state updates are single assignments or
//! map inserts, never multi-step partial writes.

use std::fmt;
use std::sync::PoisonError;

/// Mutual exclusion primitive matching `parking_lot::Mutex`'s API shape.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns an error: poisoning
    /// is recovered, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
